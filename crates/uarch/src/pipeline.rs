//! The cycle-accurate baseline out-of-order pipeline.

use crate::bpred::GsharePredictor;
use crate::cache::{AccessOutcome, MemoryHierarchy};
use crate::config::{BaselineConfig, MultiDomainConfig};
use crate::fu::FunctionalUnits;
use crate::inflight::{
    CompletionQueue, EntryState, InflightEntry, InflightTable, IssueScheduler, StoreIndex,
};
use crate::regs::{PhysRegFile, Renamer};
use crate::stats::{SimBudget, SimResult};
use flywheel_isa::{DynInst, OpClass};
use flywheel_power::{EnergyAccumulator, MachineKind, PowerModel, Unit};
use flywheel_timing::LsqDomainPlan;
use std::collections::VecDeque;

/// The baseline four-way superscalar, out-of-order machine of the paper (Table 2),
/// with the configuration knobs needed for the Figure 2 study and for the Dual-Clock
/// Issue Window front-end.
///
/// The simulator is trace driven: it consumes [`DynInst`]s from a
/// `flywheel_workloads::TraceGenerator`, a shared
/// `flywheel_workloads::RecordedTrace` cursor (the cheap option when many
/// configurations replay the same workload), or any other iterator; models fetch,
/// dispatch, wake-up/select, execution, memory and retirement cycle by cycle in two
/// clock domains (front-end and execution core); and reports performance plus a
/// Wattch-style energy breakdown.
///
/// The per-cycle hot loop is allocation-free and event-indexed: in-flight
/// instructions live in a slab-indexed [`InflightTable`], issue scans only the
/// woken entries of the [`IssueScheduler`] ready list whose operands have
/// arrived, executing instructions wait in a [`CompletionQueue`] keyed by
/// completion cycle, load/store ordering checks go through the [`StoreIndex`]
/// instead of walking the LSQ, and provably idle stretches (memory stalls) are
/// fast-forwarded in bulk — all bit-identical to single-stepped execution.
///
/// ```
/// use flywheel_uarch::{BaselineConfig, BaselineSim, SimBudget};
/// use flywheel_workloads::{Benchmark, RecordedTrace};
///
/// let budget = SimBudget::new(1_000, 5_000);
/// let program = Benchmark::Micro.synthesize(1);
/// // Capture the dynamic stream once; every configuration replays it through a
/// // zero-allocation cursor.
/// let trace = RecordedTrace::record(&program, 1, RecordedTrace::capture_len_for(budget.total()));
/// let mut sim = BaselineSim::new(BaselineConfig::paper_default(), trace.cursor());
/// let result = sim.run(budget);
/// assert_eq!(result.instructions, 5_000);
/// assert!(result.ipc() > 0.3);
/// ```
pub struct BaselineSim<I: Iterator<Item = DynInst>> {
    cfg: BaselineConfig,
    trace: I,
    peeked: Option<DynInst>,
    trace_done: bool,

    // Structures.
    hierarchy: MemoryHierarchy,
    bpred: GsharePredictor,
    renamer: Renamer,
    prf: PhysRegFile,
    fus: FunctionalUnits,

    // In-flight instruction bookkeeping.
    inflight: InflightTable,
    frontend_q: VecDeque<u64>,
    rob: VecDeque<u64>,
    iw_len: usize,
    lsq: VecDeque<u64>,
    /// Executing instructions keyed by completion cycle; stale (squashed)
    /// entries are validated out on pop.
    completions: CompletionQueue,
    sched: IssueScheduler,
    stores: StoreIndex,

    // Persistent scratch buffers (reused every cycle; never allocated in the loop).
    finished_scratch: Vec<(u64, u64)>,
    issued_scratch: Vec<u64>,

    // Fetch state.
    fetch_blocked_on_branch: Option<u64>,
    fetch_resume_at_ps: u64,

    // Clocks (time of the *next* edge of each domain).
    fe_period_ps: u64,
    be_period_ps: u64,
    /// Optional third clock domain for the LSQ + D-cache pipeline (the
    /// multi-domain machine). `None` leaves the memory path fully synchronous
    /// with the execution core — bit-identical to the two-domain baseline.
    lsq_domain: Option<LsqDomainPlan>,
    fe_time_ps: u64,
    be_time_ps: u64,
    fe_cycles: u64,
    be_cycles: u64,

    // Energy.
    power_model: PowerModel,
    energy: EnergyAccumulator,

    // Counters.
    retired: u64,
    retire_limit: u64,
    squashed: u64,
    last_progress_cycle: u64,
    /// Whether the edge being processed changed any machine state (gates the
    /// idle fast-forward in [`Self::step`]).
    tick_activity: bool,

    // Measurement snapshot (set when warm-up ends).
    measure_start: Option<MeasureSnapshot>,
}

#[derive(Debug, Clone)]
struct MeasureSnapshot {
    retired: u64,
    squashed: u64,
    be_cycles: u64,
    fe_cycles: u64,
    time_ps: u64,
    bpred: crate::bpred::BpredStats,
    caches: crate::cache::HierarchyStats,
}

impl<I: Iterator<Item = DynInst>> BaselineSim<I> {
    /// Creates a simulator for `cfg` consuming instructions from `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`BaselineConfig::validate`].
    pub fn new(cfg: BaselineConfig, trace: I) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid configuration: {e}"));
        let power_model = PowerModel::new(cfg.power_config());
        let fe_period_ps = cfg.clocks.frontend_period_ps;
        // The execution core of the baseline machine (and of the Flywheel machine in
        // trace-creation mode) is synchronous with the Issue Window.
        let be_period_ps = cfg.clocks.baseline_period_ps;
        let inflight_capacity =
            (cfg.rob_entries + cfg.front_end_stages * cfg.fetch_width + cfg.fetch_width) as usize;
        BaselineSim {
            hierarchy: MemoryHierarchy::new(&cfg),
            bpred: GsharePredictor::new(cfg.bpred),
            renamer: Renamer::new(cfg.phys_regs),
            prf: PhysRegFile::new(cfg.phys_regs),
            fus: FunctionalUnits::new(cfg.fus),
            inflight: InflightTable::with_capacity(inflight_capacity),
            frontend_q: VecDeque::new(),
            rob: VecDeque::new(),
            iw_len: 0,
            lsq: VecDeque::new(),
            completions: CompletionQueue::new(),
            sched: IssueScheduler::new(
                cfg.phys_regs as usize,
                if cfg.pipelined_wakeup { 1 } else { 0 },
            ),
            stores: StoreIndex::new(),
            finished_scratch: Vec::new(),
            issued_scratch: Vec::new(),
            fetch_blocked_on_branch: None,
            fetch_resume_at_ps: 0,
            fe_period_ps,
            be_period_ps,
            lsq_domain: None,
            fe_time_ps: fe_period_ps,
            be_time_ps: be_period_ps,
            fe_cycles: 0,
            be_cycles: 0,
            power_model,
            energy: EnergyAccumulator::new(MachineKind::Baseline),
            retired: 0,
            retire_limit: u64::MAX,
            squashed: 0,
            last_progress_cycle: 0,
            tick_activity: false,
            measure_start: None,
            peeked: None,
            trace_done: false,
            trace,
            cfg,
        }
    }

    /// Creates a multi-domain simulator: the baseline machine of `cfg.base`
    /// with the LSQ + D-cache pipeline in its own clock domain.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MultiDomainConfig::validate`].
    pub fn new_multi_domain(cfg: MultiDomainConfig, trace: I) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid configuration: {e}"));
        let mut sim = BaselineSim::new(cfg.base, trace);
        sim.lsq_domain = Some(cfg.lsq);
        sim
    }

    /// The configuration of this machine.
    pub fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    /// Runs the simulation for the given budget and returns the measured result.
    pub fn run(&mut self, budget: SimBudget) -> SimResult {
        let warm_target = budget.warmup_instructions;
        let total_target = budget.total();
        // Cap retirement at the warm-up boundary first so that measurement starts at
        // an exact instruction count, then at the total budget.
        self.retire_limit = warm_target.max(1);
        let mut watchdog = crate::watchdog::armed();
        let mut telemetry = crate::telemetry::armed();
        while self.retired < total_target && !(self.trace_done && self.inflight.is_empty()) {
            if self.measure_start.is_none() && self.retired >= warm_target {
                self.begin_measurement();
                self.retire_limit = total_target;
            }
            self.step();
            self.check_progress();
            if let Some(wd) = watchdog.as_mut() {
                wd.poll(self.be_cycles);
            }
            if let Some(t) = telemetry.as_mut() {
                t.sample_occupancy(
                    self.be_cycles,
                    self.iw_len,
                    self.rob.len(),
                    self.frontend_q.len(),
                    self.lsq.len(),
                );
            }
        }
        if self.measure_start.is_none() {
            self.begin_measurement();
        }
        self.finish()
    }

    /// Advances the machine by one clock edge (whichever domain fires next).
    ///
    /// After a fully idle edge the machine fast-forwards: it computes the
    /// earliest future time at which any state can change (next completion,
    /// operand arrival, front-end wake-up) and bulk-advances both clock domains
    /// over the provably idle edges in between, so memory-stall cycles cost a
    /// few event-queue peeks instead of a full tick each.
    fn step(&mut self) {
        self.tick_activity = false;
        if self.be_time_ps <= self.fe_time_ps {
            self.tick_backend();
        } else {
            self.tick_frontend();
        }
        if !self.tick_activity {
            self.fast_forward();
        }
    }

    /// The back-end edge time at which cycle `c` executes (the edge at
    /// `be_time_ps` runs cycle `be_cycles + 1`).
    fn be_cycle_time_ps(&self, c: u64) -> u64 {
        if c <= self.be_cycles + 1 {
            self.be_time_ps
        } else {
            self.be_time_ps
                .saturating_add((c - self.be_cycles - 1).saturating_mul(self.be_period_ps))
        }
    }

    /// The first back-end edge at or after time `ps`.
    fn be_edge_at_or_after(&self, ps: u64) -> u64 {
        if ps <= self.be_time_ps {
            self.be_time_ps
        } else {
            self.be_time_ps + (ps - self.be_time_ps).div_ceil(self.be_period_ps) * self.be_period_ps
        }
    }

    /// The first front-end edge at or after time `ps`.
    fn fe_edge_at_or_after(&self, ps: u64) -> u64 {
        if ps <= self.fe_time_ps {
            self.fe_time_ps
        } else {
            self.fe_time_ps + (ps - self.fe_time_ps).div_ceil(self.fe_period_ps) * self.fe_period_ps
        }
    }

    /// A conservative lower bound on the next time any machine state can
    /// change, or `None` when no event is safely boundable (then the machine
    /// single-steps as before).
    ///
    /// Every state change of an idle machine is driven by one of: a scheduled
    /// completion, a woken instruction's operand arrival, a dispatched
    /// instruction leaving the front-end pipeline, or fetch resuming after a
    /// miss/redirect. Chains bottom out in one of those (a parked consumer's
    /// producer is issued or itself parked; a blocked load's store is dispatched
    /// or woken), so the minimum below can only fire early — never late —
    /// which keeps fast-forwarding bit-identical to single-stepped execution.
    fn next_event_ps(&self) -> Option<u64> {
        // A completed ROB head retires at the next back-end edge — or is gated
        // only by the retire limit, which the run loop may lift between steps.
        if let Some(&head) = self.rob.front() {
            if self.inflight[head].state == EntryState::Completed {
                return None;
            }
        }
        let mut t = u64::MAX;
        if let Some(c) = self.completions.next_due() {
            t = t.min(self.be_cycle_time_ps(c));
        }
        if let Some(c) = self.sched.next_due() {
            t = t.min(self.be_cycle_time_ps(c));
        }
        let wakeup_extra = if self.cfg.pipelined_wakeup { 1 } else { 0 };
        for i in 0..self.sched.ready_len() {
            let seq = self.sched.ready_seq(i);
            let Some(e) = self.inflight.get(seq) else {
                continue;
            };
            // A load behind an older unresolved store wakes through that
            // store's own events (it is dispatched, woken or completing).
            if e.d.stat.op() == OpClass::Load && self.stores.blocks_load(seq) {
                continue;
            }
            let arrive = self.be_cycle_time_ps(e.ready_cycle.saturating_add(wakeup_extra));
            t = t.min(arrive.max(self.be_edge_at_or_after(e.visible_at_ps)));
        }
        // Dispatch of the front-end queue head.
        if let Some(&head) = self.frontend_q.front() {
            let e = &self.inflight[head];
            if e.dispatch_ready_ps > self.fe_time_ps {
                t = t.min(self.fe_edge_at_or_after(e.dispatch_ready_ps));
            } else {
                // Ready now: it dispatches at the next front-end edge unless
                // provably blocked on a back-end structure whose release is
                // covered by the back-end events above.
                let is_mem = e.d.stat.op().is_mem();
                let blocked = self.rob.len() >= self.cfg.rob_entries as usize
                    || self.iw_len >= self.cfg.iw_entries as usize
                    || (is_mem && self.lsq.len() >= self.cfg.lsq_entries as usize)
                    || (e.d.stat.dst().is_some() && self.renamer.free_regs() == 0);
                if !blocked {
                    t = t.min(self.fe_time_ps);
                }
            }
        }
        // Fetch resuming (after an I-cache fill or a mispredict redirect).
        let queue_cap = (self.cfg.front_end_stages * self.cfg.fetch_width) as usize;
        if self.fetch_blocked_on_branch.is_none()
            && !self.trace_done
            && self.frontend_q.len() < queue_cap
        {
            t = t.min(self.fe_edge_at_or_after(self.fetch_resume_at_ps));
        }
        // Never jump past the no-progress watchdog's firing point.
        t = t.min(self.be_cycle_time_ps(self.last_progress_cycle + 500_001));
        (t != u64::MAX).then_some(t)
    }

    /// Bulk-advances both clock domains over the edges strictly before the next
    /// possible event, charging exactly the per-cycle bookkeeping those idle
    /// edges would have performed.
    fn fast_forward(&mut self) {
        let Some(t) = self.next_event_ps() else {
            return;
        };
        if self.fe_time_ps < t {
            let k = (t - 1 - self.fe_time_ps) / self.fe_period_ps + 1;
            self.fe_cycles += k;
            self.fe_time_ps += k * self.fe_period_ps;
            self.energy.tick_frontend_n(false, k);
        }
        if self.be_time_ps < t {
            let k = (t - 1 - self.be_time_ps) / self.be_period_ps + 1;
            self.be_cycles += k;
            self.be_time_ps += k * self.be_period_ps;
            self.energy.tick_backend_n(k);
            if self.iw_len > 0 {
                self.energy.record(Unit::IssueWindowWakeup, k);
                self.energy.record(Unit::IssueWindowSelect, k);
            }
        }
    }

    fn check_progress(&mut self) {
        if self.be_cycles - self.last_progress_cycle > 500_000 {
            panic!(
                "no retirement progress for 500k cycles (retired {}, rob {}, iw {}, frontend {}); \
                 this indicates a simulator bug",
                self.retired,
                self.rob.len(),
                self.iw_len,
                self.frontend_q.len()
            );
        }
    }

    fn begin_measurement(&mut self) {
        self.energy = EnergyAccumulator::new(MachineKind::Baseline);
        self.measure_start = Some(MeasureSnapshot {
            retired: self.retired,
            squashed: self.squashed,
            be_cycles: self.be_cycles,
            fe_cycles: self.fe_cycles,
            time_ps: self.now_ps(),
            bpred: self.bpred.stats(),
            caches: self.hierarchy.stats(),
        });
    }

    fn now_ps(&self) -> u64 {
        // Time of the most recent edge processed in either domain.
        (self.be_time_ps - self.be_period_ps).max(self.fe_time_ps - self.fe_period_ps)
    }

    fn finish(&mut self) -> SimResult {
        let start = self
            .measure_start
            .clone()
            .expect("measurement must have started");
        let elapsed_ps = self.now_ps().saturating_sub(start.time_ps).max(1);
        let bp = self.bpred.stats();
        let ch = self.hierarchy.stats();
        let bpred = crate::bpred::BpredStats {
            cond_predictions: bp.cond_predictions - start.bpred.cond_predictions,
            cond_mispredicts: bp.cond_mispredicts - start.bpred.cond_mispredicts,
            target_mispredicts: bp.target_mispredicts - start.bpred.target_mispredicts,
            total_ctrl: bp.total_ctrl - start.bpred.total_ctrl,
        };
        let caches = crate::cache::HierarchyStats {
            l1i: (ch.l1i.0 - start.caches.l1i.0, ch.l1i.1 - start.caches.l1i.1),
            l1d: (ch.l1d.0 - start.caches.l1d.0, ch.l1d.1 - start.caches.l1d.1),
            l2: (ch.l2.0 - start.caches.l2.0, ch.l2.1 - start.caches.l2.1),
        };
        let energy = self.energy.finish(&self.power_model, elapsed_ps);
        SimResult {
            instructions: self.retired - start.retired,
            be_cycles: self.be_cycles - start.be_cycles,
            fe_cycles: self.fe_cycles - start.fe_cycles,
            elapsed_ps,
            squashed: self.squashed - start.squashed,
            bpred,
            caches,
            energy,
            gated_frontend_fraction: 0.0,
        }
    }

    // ------------------------------------------------------------------ front end

    fn tick_frontend(&mut self) {
        let now = self.fe_time_ps;
        self.fe_cycles += 1;
        self.fe_time_ps += self.fe_period_ps;
        self.energy.tick_frontend(false);

        self.dispatch(now);

        let queue_cap = (self.cfg.front_end_stages * self.cfg.fetch_width) as usize;
        if self.fetch_blocked_on_branch.is_none()
            && now >= self.fetch_resume_at_ps
            && self.frontend_q.len() < queue_cap
            && !self.trace_done
        {
            // A fetch attempt always changes state: it inserts instructions,
            // starts a line fill, or exhausts the trace.
            self.tick_activity = true;
            self.fetch(now);
        }
    }

    fn dispatch(&mut self, now: u64) {
        let sync_ps = self.cfg.sync_latency_be_cycles as u64 * self.be_period_ps;
        let mut dispatched = 0;
        while dispatched < self.cfg.dispatch_width {
            let Some(&seq) = self.frontend_q.front() else {
                break;
            };
            let (ready, op, stat) = {
                let e = &self.inflight[seq];
                (e.dispatch_ready_ps <= now, e.d.stat.op(), e.d.stat)
            };
            let is_mem = op.is_mem();
            if !ready
                || self.rob.len() >= self.cfg.rob_entries as usize
                || self.iw_len >= self.cfg.iw_entries as usize
                || (is_mem && self.lsq.len() >= self.cfg.lsq_entries as usize)
            {
                break;
            }
            let Some(rename) = self.renamer.rename(&stat, &mut self.prf) else {
                break;
            };
            self.frontend_q.pop_front();
            {
                let entry = &mut self.inflight[seq];
                entry.rename = rename;
                entry.state = EntryState::Waiting;
                entry.visible_at_ps = now + sync_ps;
                entry.in_iw = true;
            }
            self.rob.push_back(seq);
            self.iw_len += 1;
            self.sched.on_dispatch(&mut self.inflight, seq, &self.prf);
            if is_mem {
                self.lsq.push_back(seq);
                if op == OpClass::Store {
                    self.stores.on_dispatch_store(seq);
                }
            }
            self.energy.record(Unit::Rename, 1);
            self.energy.record(Unit::IssueWindowInsert, 1);
            self.energy.record(Unit::Rob, 1);
            dispatched += 1;
            self.tick_activity = true;
        }
    }

    fn next_trace_inst(&mut self) -> Option<DynInst> {
        if let Some(d) = self.peeked.take() {
            return Some(d);
        }
        match self.trace.next() {
            Some(d) => Some(d),
            None => {
                self.trace_done = true;
                None
            }
        }
    }

    fn peek_trace_inst(&mut self) -> Option<&DynInst> {
        if self.peeked.is_none() {
            self.peeked = self.trace.next();
            if self.peeked.is_none() {
                self.trace_done = true;
            }
        }
        self.peeked.as_ref()
    }

    fn fetch(&mut self, now: u64) {
        let Some(first_pc) = self.peek_trace_inst().map(|d| d.pc) else {
            return;
        };

        // I-cache access for the fetch group.
        self.energy.record(Unit::ICache, 1);
        self.energy.record(Unit::BranchPredictor, 1);
        let outcome = self.hierarchy.fetch(first_pc.addr());
        if outcome != AccessOutcome::L1 {
            if outcome == AccessOutcome::Memory {
                self.energy.record(Unit::L2, 1);
            }
            // The line is being filled; fetch retries once it arrives.
            self.fetch_resume_at_ps = now + self.hierarchy.extra_latency_ps(outcome);
            return;
        }

        let fetch_width = self.cfg.fetch_width as usize;
        let group_room = fetch_width - first_pc.fetch_group_offset(fetch_width);
        let dispatch_delay = self.cfg.front_end_stages as u64 * self.fe_period_ps;

        for _ in 0..group_room {
            let Some(d) = self.next_trace_inst() else {
                break;
            };
            let seq = d.seq;
            let correct = self.bpred.predict(&d);
            let redirects = d.redirects_fetch();
            self.energy.record(Unit::Decode, 1);
            self.inflight.insert(InflightEntry::new_frontend(
                d,
                now + dispatch_delay,
                !correct,
            ));
            self.frontend_q.push_back(seq);
            if !correct {
                // Wrong-path fetch is not modelled: fetch stalls until the branch
                // resolves and redirects the front end.
                self.fetch_blocked_on_branch = Some(seq);
                break;
            }
            if redirects {
                // Correctly predicted taken control transfer ends the fetch group;
                // fetch continues at the target next cycle.
                break;
            }
        }
    }

    // ------------------------------------------------------------------ back end

    fn tick_backend(&mut self) {
        let now = self.be_time_ps;
        self.be_cycles += 1;
        self.be_time_ps += self.be_period_ps;
        self.energy.tick_backend();
        self.fus.begin_cycle();

        self.complete(now);
        self.retire();
        self.issue(now);

        if self.iw_len > 0 {
            self.energy.record(Unit::IssueWindowWakeup, 1);
            self.energy.record(Unit::IssueWindowSelect, 1);
        }
    }

    fn complete(&mut self, now: u64) {
        let cycle = self.be_cycles;
        // Drain the due prefix of the completion queue; the per-cycle cost when
        // nothing finishes (the common case during a memory stall) is one peek.
        self.finished_scratch.clear();
        while let Some((at, seq)) = self.completions.pop_due(cycle) {
            self.finished_scratch.push((seq, at));
        }
        if self.finished_scratch.is_empty() {
            return;
        }
        self.tick_activity = true;
        // Process in program order, as the original executing-list scan did.
        self.finished_scratch.sort_unstable();
        for i in 0..self.finished_scratch.len() {
            let (seq, at) = self.finished_scratch[i];
            // An earlier completion in this very cycle may have squashed this
            // entry during mispredict recovery, and a squashed + re-issued
            // instruction leaves stale queue entries whose deadline no longer
            // matches the live schedule.
            let Some(e) = self.inflight.get_mut(seq) else {
                continue;
            };
            if e.state != EntryState::Issued || e.complete_at != at {
                continue;
            }
            e.state = EntryState::Completed;
            let (has_dst, mispredicted) = (e.rename.dst.is_some(), e.mispredicted);
            if has_dst {
                self.energy.record(Unit::RegFileWrite, 1);
            }
            self.energy.record(Unit::ResultBus, 1);
            if mispredicted {
                self.recover_from(seq, now);
            }
        }
    }

    /// Mispredict recovery: squash everything younger than `branch_seq`, restore the
    /// rename map and redirect fetch.
    fn recover_from(&mut self, branch_seq: u64, now: u64) {
        // Squash younger instructions in reverse program order.
        while let Some(&tail) = self.rob.back() {
            if tail <= branch_seq {
                break;
            }
            self.rob.pop_back();
            let entry = self
                .inflight
                .remove(tail)
                .expect("squashed entry must exist");
            if entry.in_iw {
                self.iw_len -= 1;
            }
            self.renamer.squash(&entry.rename);
            self.squashed += 1;
        }
        // Anything still in the front-end queue is younger than the branch by
        // construction (fetch stopped at the mispredicted branch).
        while let Some(&seq) = self.frontend_q.back() {
            if seq <= branch_seq {
                break;
            }
            self.frontend_q.pop_back();
            self.inflight.remove(seq);
            self.squashed += 1;
            // A squashed instruction can itself be the branch fetch is blocked
            // on; the resolving branch redirects fetch anyway.
            if self.fetch_blocked_on_branch == Some(seq) {
                self.fetch_blocked_on_branch = None;
            }
        }
        while self.lsq.back().is_some_and(|&s| s > branch_seq) {
            self.lsq.pop_back();
        }
        // Squashed executing instructions leave stale completion-queue entries;
        // `complete` validates them against the live table on pop.
        self.sched.squash_after(branch_seq);
        self.stores.squash_after(branch_seq);

        // Redirect fetch: the new PC reaches the fetch stage one front-end cycle
        // later, plus the mixed-clock FIFO latency when the domains differ.
        if self.fetch_blocked_on_branch == Some(branch_seq) {
            self.fetch_blocked_on_branch = None;
        }
        let redirect_delay = self.fe_period_ps * (1 + self.cfg.redirect_sync_fe_cycles) as u64;
        self.fetch_resume_at_ps = self.fetch_resume_at_ps.max(now + redirect_delay);
    }

    fn retire(&mut self) {
        let mut n = 0;
        while n < self.cfg.commit_width && self.retired < self.retire_limit {
            let Some(&head) = self.rob.front() else { break };
            if self.inflight[head].state != EntryState::Completed {
                break;
            }
            self.rob.pop_front();
            let entry = self
                .inflight
                .remove(head)
                .expect("retiring entry must exist");
            self.renamer.commit(&entry.rename);
            let op = entry.d.stat.op();
            if op.is_mem() {
                // The ROB head is the oldest in-flight instruction, so a retiring
                // memory instruction is always the LSQ head.
                debug_assert_eq!(self.lsq.front(), Some(&head));
                self.lsq.pop_front();
                if op == OpClass::Store {
                    self.stores.on_store_retire(head);
                }
            }
            self.energy.record(Unit::Retire, 1);
            self.retired += 1;
            self.last_progress_cycle = self.be_cycles;
            self.tick_activity = true;
            n += 1;
        }
    }

    fn issue(&mut self, now: u64) {
        let cycle = self.be_cycles;
        let wakeup_extra = if self.cfg.pipelined_wakeup { 1 } else { 0 };
        let mut issued_count = 0;
        self.issued_scratch.clear();
        self.sched.release_due(&self.inflight, cycle);

        // Scan only woken entries whose operands have arrived (all sources
        // produced and their values due), in program order — the same order the
        // original kernel walked the whole Issue Window in.
        for i in 0..self.sched.ready_len() {
            if issued_count >= self.cfg.issue_width {
                break;
            }
            let seq = self.sched.ready_seq(i);
            let (op, srcs_len, visible_at, ready_cycle, mem_addr) = {
                let e = &self.inflight[seq];
                (
                    e.d.stat.op(),
                    e.rename.srcs.len(),
                    e.visible_at_ps,
                    e.ready_cycle,
                    e.d.mem.map(|m| m.addr),
                )
            };
            if visible_at > now {
                continue;
            }
            if ready_cycle.saturating_add(wakeup_extra) > cycle {
                continue;
            }
            if !self.fus.can_issue(op) {
                continue;
            }
            if op == OpClass::Load && self.stores.blocks_load(seq) {
                continue;
            }
            // Issue it.
            assert!(self.fus.try_issue(op));
            let exec_cycles = self.execution_latency(seq, op, mem_addr);
            let wakeup_ready = cycle + exec_cycles;
            let complete_at = cycle + self.cfg.reg_read_cycles as u64 + exec_cycles;
            {
                let e = &mut self.inflight[seq];
                e.state = EntryState::Issued;
                e.complete_at = complete_at;
                e.in_iw = false;
                if let Some(dst) = e.rename.dst {
                    self.prf.mark_ready(dst, wakeup_ready);
                    self.sched.defer_wake(dst, wakeup_ready);
                }
            }
            self.completions.push(complete_at, seq);
            self.iw_len -= 1;
            self.energy.record(Unit::RegFileRead, srcs_len as u64);
            self.energy.record(self.fu_energy_unit(op), 1);
            if op.is_mem() {
                self.energy.record(Unit::Lsq, 1);
                if op == OpClass::Store {
                    let addr = mem_addr.expect("stores carry an address");
                    self.stores.on_store_issue(seq, addr & !63);
                }
            }
            self.issued_scratch.push(seq);
            issued_count += 1;
        }
        if issued_count > 0 {
            self.tick_activity = true;
        }
        self.sched.remove_issued(&self.issued_scratch);
        self.sched.drain_wakes(&mut self.inflight);
    }

    fn fu_energy_unit(&self, op: OpClass) -> Unit {
        match op {
            OpClass::IntMul | OpClass::IntDiv => Unit::FuIntMulDiv,
            OpClass::FpAdd => Unit::FuFpAdd,
            OpClass::FpMul | OpClass::FpDiv => Unit::FuFpMulDiv,
            _ => Unit::FuIntAlu,
        }
    }

    /// Execution latency in back-end cycles for an instruction issued this cycle.
    fn execution_latency(&mut self, seq: u64, op: OpClass, mem_addr: Option<u64>) -> u64 {
        let base = op.base_latency() as u64;
        match op {
            OpClass::Load => {
                let addr = mem_addr.expect("loads carry an address");
                if self.stores.forwards_to(seq, addr & !63) {
                    // Store-to-load forwarding inside the LSQ. When the LSQ is
                    // its own clock domain the load still pays the crossing
                    // into the queue and back.
                    return match self.lsq_domain {
                        Some(d) => base + 2 * d.sync_cycles as u64,
                        None => base,
                    };
                }
                self.energy.record(Unit::DCache, 1);
                let outcome = self.hierarchy.data(addr);
                if outcome != AccessOutcome::L1 {
                    self.energy.record(Unit::L2, 1);
                }
                let extra_ps = self.hierarchy.extra_latency_ps(outcome);
                match self.lsq_domain {
                    // Multi-domain machine: the L1 access pipeline runs in the
                    // faster LSQ/D-cache domain, the L2/memory portion is
                    // wall-clock constant, and the total is quantized back to
                    // the execution-core clock after a synchronizer crossing in
                    // each direction.
                    Some(d) => {
                        let lsq_ps = self.cfg.l1_hit_cycles as u64 * d.period_ps + extra_ps;
                        base + 2 * d.sync_cycles as u64 + lsq_ps.div_ceil(self.be_period_ps)
                    }
                    None => {
                        let extra_cycles = extra_ps.div_ceil(self.be_period_ps);
                        base + self.cfg.l1_hit_cycles as u64 + extra_cycles
                    }
                }
            }
            OpClass::Store => {
                // The store's data is written at retirement; the D-cache access is
                // charged here for energy purposes and the latency only covers
                // address generation.
                self.energy.record(Unit::DCache, 1);
                let addr = mem_addr.expect("stores carry an address");
                let outcome = self.hierarchy.data(addr);
                if outcome != AccessOutcome::L1 {
                    self.energy.record(Unit::L2, 1);
                }
                base
            }
            _ => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SimBudget;
    use flywheel_workloads::{Benchmark, TraceGenerator};

    fn run_benchmark(b: Benchmark, cfg: BaselineConfig, budget: SimBudget) -> SimResult {
        let program = b.synthesize(42);
        let trace = TraceGenerator::new(&program, 42);
        BaselineSim::new(cfg, trace).run(budget)
    }

    #[test]
    fn retires_the_requested_instruction_count() {
        let r = run_benchmark(
            Benchmark::Micro,
            BaselineConfig::paper_default(),
            SimBudget::new(1_000, 20_000),
        );
        assert_eq!(r.instructions, 20_000);
        assert!(r.be_cycles > 0 && r.fe_cycles > 0);
        assert!(r.elapsed_ps > 0);
    }

    #[test]
    fn multi_domain_machine_runs_and_diverges_from_the_baseline() {
        use flywheel_timing::TechNode;
        let budget = SimBudget::new(1_000, 20_000);
        let program = Benchmark::PtrChase.synthesize(42);
        let base = BaselineSim::new(
            BaselineConfig::paper_default(),
            TraceGenerator::new(&program, 42),
        )
        .run(budget);
        let multi = BaselineSim::new_multi_domain(
            MultiDomainConfig::paper(TechNode::N130),
            TraceGenerator::new(&program, 42),
        )
        .run(budget);
        // Same committed work, different load timing: the LSQ domain must
        // change the cycle count without touching architectural progress.
        assert_eq!(multi.instructions, base.instructions);
        assert_ne!(multi.be_cycles, base.be_cycles);
        assert!(multi.elapsed_ps > 0);
    }

    #[test]
    fn ipc_is_plausible_for_a_four_wide_machine() {
        let r = run_benchmark(
            Benchmark::Ijpeg,
            BaselineConfig::paper_default(),
            SimBudget::test(),
        );
        let ipc = r.ipc();
        assert!(
            (0.4..4.0).contains(&ipc),
            "IPC {ipc} outside plausible range for the baseline"
        );
    }

    #[test]
    fn extra_frontend_stage_hurts_performance_slightly() {
        let budget = SimBudget::new(5_000, 40_000);
        let base = run_benchmark(Benchmark::Gzip, BaselineConfig::paper_default(), budget);
        let deeper = run_benchmark(
            Benchmark::Gzip,
            BaselineConfig::paper_default().with_extra_frontend_stage(),
            budget,
        );
        let slowdown = deeper.elapsed_ps as f64 / base.elapsed_ps as f64;
        assert!(
            slowdown > 0.999,
            "an extra front-end stage should not speed the machine up ({slowdown})"
        );
        assert!(slowdown < 1.25, "penalty should be moderate ({slowdown})");
    }

    #[test]
    fn pipelined_wakeup_hurts_more_than_extra_fetch_stage() {
        // This is the core claim of Figure 2.
        let budget = SimBudget::new(5_000, 40_000);
        for bench in [Benchmark::Gzip, Benchmark::Parser] {
            let base = run_benchmark(bench, BaselineConfig::paper_default(), budget);
            let deeper = run_benchmark(
                bench,
                BaselineConfig::paper_default().with_extra_frontend_stage(),
                budget,
            );
            let piped = run_benchmark(
                bench,
                BaselineConfig::paper_default().with_pipelined_wakeup(),
                budget,
            );
            let fetch_penalty = deeper.elapsed_ps as f64 / base.elapsed_ps as f64 - 1.0;
            let wakeup_penalty = piped.elapsed_ps as f64 / base.elapsed_ps as f64 - 1.0;
            assert!(
                wakeup_penalty > fetch_penalty,
                "{bench}: wake-up/select pipelining ({wakeup_penalty:.3}) should cost more than \
                 an extra fetch stage ({fetch_penalty:.3})"
            );
            assert!(
                wakeup_penalty > 0.05,
                "{bench}: pipelining wake-up/select should cost several percent ({wakeup_penalty:.3})"
            );
        }
    }

    #[test]
    fn branch_mispredicts_and_cache_misses_are_observed() {
        let r = run_benchmark(
            Benchmark::Parser,
            BaselineConfig::paper_default(),
            SimBudget::test(),
        );
        assert!(r.bpred.total_ctrl > 0);
        assert!(
            r.bpred.cond_mispredicts > 0,
            "parser should mispredict sometimes"
        );
        assert!(r.bpred.cond_mispredict_rate() < 0.5);
        assert!(r.caches.l1d.0 > 0);
        // Wrong-path fetch is not modelled (fetch stalls at a mispredicted branch),
        // so mispredict recovery never finds younger instructions to squash.
        assert_eq!(r.squashed, 0);
    }

    #[test]
    fn energy_breakdown_is_populated() {
        let r = run_benchmark(
            Benchmark::Micro,
            BaselineConfig::paper_default(),
            SimBudget::test(),
        );
        assert!(r.energy.frontend_pj > 0.0);
        assert!(r.energy.backend_pj > 0.0);
        assert!(r.energy.clock_pj > 0.0);
        assert!(r.energy.leakage_pj() > 0.0);
        assert_eq!(r.energy.flywheel_pj, 0.0, "baseline has no Execution Cache");
        assert_eq!(
            r.energy.leakage_flywheel_pj, 0.0,
            "baseline must not be charged Execution-Cache/Register-Update leakage"
        );
        assert!(r.average_power_w() > 0.1 && r.average_power_w() < 100.0);
    }

    #[test]
    fn dual_clock_frontend_does_not_break_correctness() {
        let budget = SimBudget::new(2_000, 20_000);
        let r = run_benchmark(
            Benchmark::Gcc,
            BaselineConfig::paper_default().with_dual_clock_frontend(50),
            budget,
        );
        assert_eq!(r.instructions, 20_000);
        // The faster front-end produces more front-end cycles than back-end cycles
        // over the same wall-clock interval.
        assert!(r.fe_cycles > r.be_cycles);
    }

    #[test]
    fn memory_bound_benchmark_is_slower_than_cache_friendly_one() {
        let budget = SimBudget::new(5_000, 30_000);
        let friendly = run_benchmark(Benchmark::Ijpeg, BaselineConfig::paper_default(), budget);
        let bound = run_benchmark(Benchmark::Equake, BaselineConfig::paper_default(), budget);
        assert!(
            bound.ipc() < friendly.ipc() * 1.2,
            "equake should not be dramatically faster"
        );
        assert!(
            bound.caches.l1d.1 as f64 / bound.caches.l1d.0 as f64
                > friendly.caches.l1d.1 as f64 / friendly.caches.l1d.0 as f64,
            "equake should miss more in the D-cache"
        );
    }
}
