//! Per-run watchdog budget for converting runaway simulations into typed,
//! catchable failures.
//!
//! The sweep executor arms a [`WatchdogConfig`] on the worker thread before
//! running a cell; both simulator kernels ([`crate::BaselineSim`] and the
//! Flywheel kernel in `flywheel-core`) snapshot the armed config once at the
//! top of `run()` and poll it from their step loops. A trip raises a panic
//! whose payload is a [`WatchdogTimeout`], which the executor's `catch_unwind`
//! downcasts into a `Failed {cause: Timeout}` cell outcome — distinct from an
//! ordinary (string-payload) simulator panic.
//!
//! Cost when disarmed (every non-sweep caller): one thread-local read per
//! kernel `run()`, zero work per simulated cycle. Cost when armed: one `u64`
//! compare per step, with `Instant::now()` consulted only once per
//! [`Watchdog::WALL_CHECK_INTERVAL`] back-end cycles — cheap enough that
//! arming never changes simulated behaviour (it can only panic).

use std::cell::Cell;
use std::time::{Duration, Instant};

/// Budget limits for one simulation run on the current thread.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Trip once the kernel's back-end cycle counter exceeds this value.
    ///
    /// Callers derive it from the instruction budget with a generous
    /// cycles-per-instruction allowance, so a healthy run can never trip.
    pub max_be_cycles: u64,
    /// Trip once wall-clock time passes this deadline (checked between
    /// calendar events, every [`Watchdog::WALL_CHECK_INTERVAL`] cycles).
    pub wall_deadline: Option<Instant>,
}

impl WatchdogConfig {
    /// A config with the given cycle cap and no wall-clock deadline.
    pub fn cycles(max_be_cycles: u64) -> Self {
        WatchdogConfig {
            max_be_cycles,
            wall_deadline: None,
        }
    }

    /// Adds a wall-clock deadline `timeout` from now.
    pub fn with_wall_timeout(mut self, timeout: Duration) -> Self {
        self.wall_deadline = Some(Instant::now() + timeout);
        self
    }
}

/// Panic payload raised when an armed watchdog trips.
///
/// Raised via [`std::panic::panic_any`] so executors can downcast it and
/// distinguish a timeout from a genuine simulator bug.
#[derive(Debug, Clone)]
pub struct WatchdogTimeout {
    /// Back-end cycle count at the moment the watchdog fired.
    pub be_cycles: u64,
    /// Human-readable description of which limit fired.
    pub reason: String,
}

impl std::fmt::Display for WatchdogTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "watchdog timeout at be_cycle {}: {}",
            self.be_cycles, self.reason
        )
    }
}

thread_local! {
    static ARMED: Cell<Option<WatchdogConfig>> = const { Cell::new(None) };
}

/// Arms the watchdog for the current thread until the returned guard drops.
///
/// Nested arms are allowed; the guard restores the previous config.
pub fn arm(cfg: WatchdogConfig) -> WatchdogGuard {
    let prev = ARMED.with(|a| a.replace(Some(cfg)));
    WatchdogGuard { prev }
}

/// Disarms the watchdog when dropped, restoring whatever was armed before.
#[derive(Debug)]
pub struct WatchdogGuard {
    prev: Option<WatchdogConfig>,
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        ARMED.with(|a| a.set(self.prev));
    }
}

/// Snapshots the currently armed config into a pollable state, or `None` when
/// the thread has no watchdog armed (the common case outside sweeps).
pub fn armed() -> Option<Watchdog> {
    ARMED.with(|a| a.get()).map(|cfg| Watchdog {
        cfg,
        next_wall_check: Watchdog::WALL_CHECK_INTERVAL,
    })
}

/// Pollable watchdog state held by a kernel for the duration of one `run()`.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    next_wall_check: u64,
}

impl Watchdog {
    /// How many back-end cycles elapse between wall-clock checks.
    pub const WALL_CHECK_INTERVAL: u64 = 1 << 16;

    /// Checks the budget at the current back-end cycle count; panics with a
    /// [`WatchdogTimeout`] payload if a limit has been exceeded.
    #[inline]
    pub fn poll(&mut self, be_cycles: u64) {
        if be_cycles > self.cfg.max_be_cycles {
            std::panic::panic_any(WatchdogTimeout {
                be_cycles,
                reason: format!("exceeded cycle cap of {}", self.cfg.max_be_cycles),
            });
        }
        if be_cycles >= self.next_wall_check {
            self.next_wall_check = be_cycles.saturating_add(Self::WALL_CHECK_INTERVAL);
            if let Some(deadline) = self.cfg.wall_deadline {
                if Instant::now() > deadline {
                    std::panic::panic_any(WatchdogTimeout {
                        be_cycles,
                        reason: "exceeded wall-clock deadline".to_owned(),
                    });
                }
            }
        }
    }
}

/// Blocks until the armed wall-clock deadline passes, then trips the watchdog.
///
/// Used by the fault-injection harness to model a stalled cell without
/// touching the kernels: the stall consumes its whole wall budget and then
/// fails exactly the way a runaway simulation would. Panics immediately (still
/// with a [`WatchdogTimeout`] payload) when no deadline is armed, so an
/// injected stall can never hang a sweep that forgot to set one.
pub fn stall_until_deadline() -> ! {
    let deadline = ARMED.with(|a| a.get()).and_then(|cfg| cfg.wall_deadline);
    if let Some(deadline) = deadline {
        while Instant::now() <= deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    std::panic::panic_any(WatchdogTimeout {
        be_cycles: 0,
        reason: "injected stall consumed the wall-clock budget".to_owned(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_thread_reports_no_watchdog() {
        assert!(armed().is_none());
    }

    #[test]
    fn guard_restores_previous_config() {
        {
            let _outer = arm(WatchdogConfig::cycles(10));
            {
                let _inner = arm(WatchdogConfig::cycles(20));
                assert_eq!(armed().unwrap().cfg.max_be_cycles, 20);
            }
            assert_eq!(armed().unwrap().cfg.max_be_cycles, 10);
        }
        assert!(armed().is_none());
    }

    #[test]
    fn cycle_cap_trips_with_typed_payload() {
        let _guard = arm(WatchdogConfig::cycles(100));
        let mut wd = armed().unwrap();
        wd.poll(100); // at the cap: fine
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| wd.poll(101)))
            .expect_err("poll past the cap must panic");
        let timeout = err
            .downcast::<WatchdogTimeout>()
            .expect("payload must be a WatchdogTimeout");
        assert_eq!(timeout.be_cycles, 101);
    }

    #[test]
    fn expired_wall_deadline_trips_at_the_next_check() {
        let _guard = arm(WatchdogConfig {
            max_be_cycles: u64::MAX,
            wall_deadline: Some(Instant::now() - Duration::from_millis(1)),
        });
        let mut wd = armed().unwrap();
        wd.poll(1); // below the check interval: not yet consulted
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wd.poll(Watchdog::WALL_CHECK_INTERVAL)
        }))
        .expect_err("poll past an expired deadline must panic");
        assert!(err.is::<WatchdogTimeout>());
    }

    #[test]
    fn injected_stall_trips_even_without_a_deadline() {
        let err = std::panic::catch_unwind(|| stall_until_deadline())
            .expect_err("stall must trip the watchdog");
        assert!(err.is::<WatchdogTimeout>());
    }
}
