//! Functional-unit issue-bandwidth tracking.

use crate::config::FuConfig;
use flywheel_isa::{FuKind, OpClass};

/// Tracks how many instructions of each functional-unit kind have been issued in the
/// current execution-core cycle.
///
/// Units are treated as fully pipelined: the constraint modelled is issue bandwidth
/// per kind per cycle (4 integer ALUs can start 4 ALU operations per cycle, the
/// single FP multiply/divide unit can start one FP multiply per cycle, and so on).
/// Long-latency operations still occupy their result latency; only the structural
/// issue-port contention is captured here, matching the level of detail of the
/// paper's SimpleScalar-derived simulator.
#[derive(Debug, Clone)]
pub struct FunctionalUnits {
    cfg: FuConfig,
    used: [u32; 5],
    issued_total: [u64; 5],
}

impl FunctionalUnits {
    /// Creates the pool described by `cfg`.
    pub fn new(cfg: FuConfig) -> Self {
        FunctionalUnits {
            cfg,
            used: [0; 5],
            issued_total: [0; 5],
        }
    }

    /// Starts a new execution-core cycle (clears the per-cycle issue counters).
    pub fn begin_cycle(&mut self) {
        self.used = [0; 5];
    }

    /// Whether an instruction of class `op` could issue this cycle.
    pub fn can_issue(&self, op: OpClass) -> bool {
        let kind = op.fu_kind();
        self.used[kind.index()] < self.cfg.count(kind)
    }

    /// Attempts to claim an issue slot for `op` this cycle.
    pub fn try_issue(&mut self, op: OpClass) -> bool {
        let kind = op.fu_kind();
        if self.used[kind.index()] < self.cfg.count(kind) {
            self.used[kind.index()] += 1;
            self.issued_total[kind.index()] += 1;
            true
        } else {
            false
        }
    }

    /// Total operations issued to `kind` over the whole run.
    pub fn issued(&self, kind: FuKind) -> u64 {
        self.issued_total[kind.index()]
    }

    /// The configured unit counts.
    pub fn config(&self) -> FuConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_bandwidth_is_limited_per_kind() {
        let mut fus = FunctionalUnits::new(FuConfig::paper());
        fus.begin_cycle();
        for _ in 0..4 {
            assert!(fus.try_issue(OpClass::IntAlu));
        }
        assert!(!fus.try_issue(OpClass::IntAlu), "only 4 integer ALUs");
        // Other kinds are unaffected.
        assert!(fus.try_issue(OpClass::Load));
        assert!(fus.try_issue(OpClass::Store));
        assert!(!fus.try_issue(OpClass::Load), "only 2 memory ports");
        assert!(fus.try_issue(OpClass::FpMul));
        assert!(!fus.try_issue(OpClass::FpDiv), "single FP mul/div unit");
    }

    #[test]
    fn begin_cycle_resets_bandwidth() {
        let mut fus = FunctionalUnits::new(FuConfig::paper());
        fus.begin_cycle();
        assert!(fus.try_issue(OpClass::FpMul));
        assert!(!fus.can_issue(OpClass::FpDiv));
        fus.begin_cycle();
        assert!(fus.can_issue(OpClass::FpDiv));
        assert_eq!(fus.issued(FuKind::FpMulDiv), 1);
    }

    #[test]
    fn branches_share_the_integer_alus() {
        let mut fus = FunctionalUnits::new(FuConfig::paper());
        fus.begin_cycle();
        for _ in 0..4 {
            assert!(fus.try_issue(OpClass::Ctrl));
        }
        assert!(!fus.try_issue(OpClass::IntAlu));
    }
}
