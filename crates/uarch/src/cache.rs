//! Set-associative caches and the two-level memory hierarchy.

use crate::config::{BaselineConfig, CacheConfig};

/// A set-associative cache with LRU replacement.
///
/// Only tags are tracked (the simulator is trace driven and never needs data).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `tags[set][way]` — `None` means invalid.
    tags: Vec<Vec<Option<u64>>>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<Vec<u64>>,
    stamp: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            tags: vec![vec![None; cfg.assoc as usize]; sets],
            stamps: vec![vec![0; cfg.assoc as usize]; sets],
            stamp: 0,
            accesses: 0,
            misses: 0,
        }
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes as u64;
        let set = (line % self.tags.len() as u64) as usize;
        let tag = line / self.tags.len() as u64;
        (set, tag)
    }

    /// Accesses `addr`, allocating the line on a miss. Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        self.accesses += 1;
        let (set, tag) = self.index_and_tag(addr);
        let ways = &mut self.tags[set];
        if let Some(way) = ways.iter().position(|t| *t == Some(tag)) {
            self.stamps[set][way] = self.stamp;
            return true;
        }
        self.misses += 1;
        // Choose an invalid way if present, otherwise the LRU way.
        let victim = ways.iter().position(|t| t.is_none()).unwrap_or_else(|| {
            self.stamps[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| **s)
                .map(|(i, _)| i)
                .expect("cache must have at least one way")
        });
        self.tags[set][victim] = Some(tag);
        self.stamps[set][victim] = self.stamp;
        false
    }

    /// Checks whether `addr` is resident without updating any state.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.index_and_tag(addr);
        self.tags[set].contains(&Some(tag))
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }
}

/// Where a memory access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// L1 hit.
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// Miss in both levels, served by main memory.
    Memory,
}

/// Statistics of one cache level plus the L2/memory traffic it generated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 instruction-cache accesses and misses.
    pub l1i: (u64, u64),
    /// L1 data-cache accesses and misses.
    pub l1d: (u64, u64),
    /// L2 accesses and misses.
    pub l2: (u64, u64),
}

/// The two-level memory hierarchy of the paper's machine: split 64 KB L1 caches and a
/// unified 512 KB L2 in front of a flat 100-cycle memory.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l2_latency_ps: u64,
    mem_latency_ps: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: &BaselineConfig) -> Self {
        MemoryHierarchy {
            l1i: Cache::new(cfg.icache),
            l1d: Cache::new(cfg.dcache),
            l2: Cache::new(cfg.l2),
            l2_latency_ps: cfg.l2_latency_ps(),
            mem_latency_ps: cfg.mem_latency_ps(),
        }
    }

    /// Performs an instruction fetch at `addr`.
    pub fn fetch(&mut self, addr: u64) -> AccessOutcome {
        if self.l1i.access(addr) {
            AccessOutcome::L1
        } else if self.l2.access(addr) {
            AccessOutcome::L2
        } else {
            AccessOutcome::Memory
        }
    }

    /// Performs a data access at `addr`.
    pub fn data(&mut self, addr: u64) -> AccessOutcome {
        if self.l1d.access(addr) {
            AccessOutcome::L1
        } else if self.l2.access(addr) {
            AccessOutcome::L2
        } else {
            AccessOutcome::Memory
        }
    }

    /// Extra latency, in picoseconds, added beyond the pipelined L1 access for the
    /// given outcome.
    pub fn extra_latency_ps(&self, outcome: AccessOutcome) -> u64 {
        match outcome {
            AccessOutcome::L1 => 0,
            AccessOutcome::L2 => self.l2_latency_ps,
            AccessOutcome::Memory => self.l2_latency_ps + self.mem_latency_ps,
        }
    }

    /// Whether this outcome left the L1.
    pub fn is_l2_access(outcome: AccessOutcome) -> bool {
        outcome != AccessOutcome::L1
    }

    /// Current statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: (self.l1i.accesses(), self.l1i.misses()),
            l1d: (self.l1d.accesses(), self.l1d.misses()),
            l2: (self.l2.accesses(), self.l2.misses()),
        }
    }

    /// L1 data-cache miss rate.
    pub fn l1d_miss_rate(&self) -> f64 {
        self.l1d.miss_rate()
    }

    /// L1 instruction-cache miss rate.
    pub fn l1i_miss_rate(&self) -> f64 {
        self.l1i.miss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 bytes.
        Cache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1010), "same line, different offset");
        assert_eq!(c.misses(), 1);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache();
        // Three lines mapping to the same set (set stride = 4 lines * 64B = 256B).
        let a = 0x0000;
        let b = 0x0400;
        let d = 0x0800;
        assert!(!c.access(a));
        assert!(!c.access(b));
        // Touch `a` so `b` becomes LRU.
        assert!(c.access(a));
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a), "a should still be resident");
        assert!(!c.access(b), "b should have been evicted");
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        let mut c = small_cache();
        // 64 distinct lines in a 8-line cache: after warm-up, still mostly misses.
        for round in 0..4 {
            for i in 0..64u64 {
                c.access(i * 64);
            }
            let _ = round;
        }
        assert!(c.miss_rate() > 0.9);
    }

    #[test]
    fn small_working_set_fits() {
        let mut c = small_cache();
        for _ in 0..16 {
            for i in 0..4u64 {
                c.access(i * 64);
            }
        }
        assert!(c.miss_rate() < 0.1);
    }

    #[test]
    fn contains_does_not_allocate() {
        let mut c = small_cache();
        assert!(!c.contains(0x40));
        c.access(0x40);
        assert!(c.contains(0x40));
        assert_eq!(c.accesses(), 1);
    }

    #[test]
    fn hierarchy_latencies_reflect_outcomes() {
        let cfg = BaselineConfig::paper_default();
        let mut h = MemoryHierarchy::new(&cfg);
        let first = h.data(0xdead_0000);
        assert_eq!(first, AccessOutcome::Memory);
        let second = h.data(0xdead_0000);
        assert_eq!(second, AccessOutcome::L1);
        assert_eq!(h.extra_latency_ps(AccessOutcome::L1), 0);
        assert!(h.extra_latency_ps(AccessOutcome::Memory) > h.extra_latency_ps(AccessOutcome::L2));
        assert_eq!(
            h.extra_latency_ps(AccessOutcome::Memory),
            cfg.l2_latency_ps() + cfg.mem_latency_ps()
        );
    }

    #[test]
    fn l2_catches_l1_victims() {
        let cfg = BaselineConfig::paper_default();
        let mut h = MemoryHierarchy::new(&cfg);
        // Touch a working set bigger than L1 (64KB) but smaller than L2 (512KB).
        let lines = 4096u64; // 256 KB
        for _ in 0..3 {
            for i in 0..lines {
                h.data(0x1000_0000 + i * 64);
            }
        }
        let stats = h.stats();
        assert!(stats.l1d.1 > 0, "L1 should miss");
        let l2_miss_rate = stats.l2.1 as f64 / stats.l2.0 as f64;
        assert!(
            l2_miss_rate < 0.5,
            "L2 should absorb most L1 misses, rate {l2_miss_rate}"
        );
    }
}
