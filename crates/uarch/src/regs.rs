//! R10000-style register renaming and the physical register file scoreboard.

use flywheel_isa::{ArchReg, StaticInst, NUM_ARCH_REGS};

/// Identifier of a physical register.
pub type PhysReg = u16;

/// A cycle timestamp meaning "value not available yet".
const NOT_READY: u64 = u64::MAX;

/// The physical register file scoreboard: for every physical register, the back-end
/// cycle at which its value becomes available to consumers (through the bypass
/// network).
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    ready_at: Vec<u64>,
}

impl PhysRegFile {
    /// Creates a scoreboard for `n` physical registers, all ready.
    pub fn new(n: u32) -> Self {
        PhysRegFile {
            ready_at: vec![0; n as usize],
        }
    }

    /// Number of physical registers.
    pub fn len(&self) -> usize {
        self.ready_at.len()
    }

    /// Whether the register file has no registers (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.ready_at.is_empty()
    }

    /// Marks `reg` as produced by an in-flight instruction (not ready).
    pub fn mark_pending(&mut self, reg: PhysReg) {
        self.ready_at[reg as usize] = NOT_READY;
    }

    /// Marks `reg` as available to consumers from `cycle` on.
    pub fn mark_ready(&mut self, reg: PhysReg, cycle: u64) {
        self.ready_at[reg as usize] = cycle;
    }

    /// Whether `reg`'s value is available at `cycle`.
    pub fn is_ready(&self, reg: PhysReg, cycle: u64) -> bool {
        self.ready_at[reg as usize] <= cycle
    }

    /// The cycle `reg` becomes available (``u64::MAX`` if still pending).
    pub fn ready_at(&self, reg: PhysReg) -> u64 {
        self.ready_at[reg as usize]
    }
}

/// Physical source registers of a renamed instruction (at most two), stored
/// inline so renaming never allocates — the rename path runs once per dispatched
/// instruction on the simulator hot loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SrcList {
    regs: [PhysReg; 2],
    len: u8,
}

impl SrcList {
    /// Appends a source register.
    ///
    /// # Panics
    ///
    /// Panics if more than two sources are pushed (the ISA has at most two).
    pub fn push(&mut self, reg: PhysReg) {
        self.regs[self.len as usize] = reg;
        self.len += 1;
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the instruction has no register sources.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sources as a slice.
    pub fn as_slice(&self) -> &[PhysReg] {
        &self.regs[..self.len as usize]
    }
}

impl<'a> IntoIterator for &'a SrcList {
    type Item = &'a PhysReg;
    type IntoIter = std::slice::Iter<'a, PhysReg>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<PhysReg> for SrcList {
    fn from_iter<I: IntoIterator<Item = PhysReg>>(iter: I) -> Self {
        let mut list = SrcList::default();
        for reg in iter {
            list.push(reg);
        }
        list
    }
}

/// The result of renaming one instruction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RenameOutcome {
    /// Physical registers of the source operands.
    pub srcs: SrcList,
    /// Physical register allocated to the destination, if the instruction writes one.
    pub dst: Option<PhysReg>,
    /// The previous mapping of the destination architected register (freed when the
    /// instruction retires, restored if it is squashed).
    pub prev: Option<PhysReg>,
    /// Destination architected register, if any.
    pub dst_arch: Option<ArchReg>,
}

/// MIPS R10000-style renamer: a map table from architected to physical registers plus
/// a free list.
///
/// * `rename` allocates a fresh physical register for the destination and reads the
///   current mappings for the sources; it fails (returns `None`) when the free list
///   is empty, which stalls dispatch.
/// * `commit` frees the *previous* mapping of the destination once the instruction
///   retires.
/// * `squash` undoes a rename in reverse program order during mispredict recovery.
#[derive(Debug, Clone)]
pub struct Renamer {
    map: [PhysReg; NUM_ARCH_REGS],
    free: Vec<PhysReg>,
    phys_regs: u32,
}

impl Renamer {
    /// Creates a renamer with `phys_regs` physical registers; the first
    /// `NUM_ARCH_REGS` are bound to the architected state and the rest populate the
    /// free list.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs` does not exceed the architected register count.
    pub fn new(phys_regs: u32) -> Self {
        assert!(
            phys_regs as usize > NUM_ARCH_REGS,
            "need more physical than architected registers"
        );
        let mut map = [0; NUM_ARCH_REGS];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as PhysReg;
        }
        let free = (NUM_ARCH_REGS as PhysReg..phys_regs as PhysReg)
            .rev()
            .collect();
        Renamer {
            map,
            free,
            phys_regs,
        }
    }

    /// Number of free physical registers.
    pub fn free_regs(&self) -> usize {
        self.free.len()
    }

    /// Total number of physical registers.
    pub fn phys_regs(&self) -> u32 {
        self.phys_regs
    }

    /// Current mapping of an architected register.
    pub fn mapping(&self, reg: ArchReg) -> PhysReg {
        self.map[reg.flat_index()]
    }

    /// Renames `inst`. Returns `None` (and changes nothing) if a destination register
    /// is needed but the free list is empty.
    pub fn rename(&mut self, inst: &StaticInst, prf: &mut PhysRegFile) -> Option<RenameOutcome> {
        let srcs: SrcList = inst.srcs().map(|s| self.map[s.flat_index()]).collect();
        let (dst, prev, dst_arch) = if let Some(d) = inst.dst() {
            let phys = self.free.pop()?;
            let prev = self.map[d.flat_index()];
            self.map[d.flat_index()] = phys;
            prf.mark_pending(phys);
            (Some(phys), Some(prev), Some(d))
        } else {
            (None, None, None)
        };
        Some(RenameOutcome {
            srcs,
            dst,
            prev,
            dst_arch,
        })
    }

    /// Frees the previous mapping when an instruction retires.
    pub fn commit(&mut self, outcome: &RenameOutcome) {
        if let Some(prev) = outcome.prev {
            self.free.push(prev);
        }
    }

    /// Undoes a rename during mispredict recovery. Must be called in reverse program
    /// order (youngest first).
    pub fn squash(&mut self, outcome: &RenameOutcome) {
        if let (Some(dst), Some(prev), Some(arch)) = (outcome.dst, outcome.prev, outcome.dst_arch) {
            debug_assert_eq!(self.map[arch.flat_index()], dst, "squash out of order");
            self.map[arch.flat_index()] = prev;
            self.free.push(dst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flywheel_isa::ArchReg;

    fn alu(dst: u8, src: u8) -> StaticInst {
        StaticInst::alu(ArchReg::int(dst), ArchReg::int(src), None)
    }

    #[test]
    fn rename_creates_new_mapping_and_tracks_sources() {
        let mut r = Renamer::new(80);
        let mut prf = PhysRegFile::new(80);
        let before = r.mapping(ArchReg::int(5));
        let out = r.rename(&alu(5, 5), &mut prf).unwrap();
        assert_eq!(
            out.srcs.as_slice(),
            &[before],
            "source reads the old mapping"
        );
        assert_ne!(out.dst.unwrap(), before);
        assert_eq!(out.prev.unwrap(), before);
        assert_eq!(r.mapping(ArchReg::int(5)), out.dst.unwrap());
        assert!(!prf.is_ready(out.dst.unwrap(), 1000));
    }

    #[test]
    fn free_list_exhaustion_stalls_rename() {
        let phys = (NUM_ARCH_REGS + 2) as u32;
        let mut r = Renamer::new(phys);
        let mut prf = PhysRegFile::new(phys);
        assert!(r.rename(&alu(1, 2), &mut prf).is_some());
        assert!(r.rename(&alu(2, 3), &mut prf).is_some());
        assert_eq!(r.free_regs(), 0);
        assert!(r.rename(&alu(3, 4), &mut prf).is_none());
        // Instructions without a destination still rename fine.
        let store = StaticInst::store(ArchReg::int(1), ArchReg::int(2));
        assert!(r.rename(&store, &mut prf).is_some());
    }

    #[test]
    fn commit_frees_previous_mapping() {
        let mut r = Renamer::new(70);
        let mut prf = PhysRegFile::new(70);
        let before = r.free_regs();
        let out = r.rename(&alu(7, 7), &mut prf).unwrap();
        assert_eq!(r.free_regs(), before - 1);
        r.commit(&out);
        assert_eq!(r.free_regs(), before);
    }

    #[test]
    fn squash_restores_previous_mapping() {
        let mut r = Renamer::new(70);
        let mut prf = PhysRegFile::new(70);
        let original = r.mapping(ArchReg::int(9));
        let out1 = r.rename(&alu(9, 1), &mut prf).unwrap();
        let out2 = r.rename(&alu(9, 2), &mut prf).unwrap();
        // Undo youngest-first.
        r.squash(&out2);
        assert_eq!(r.mapping(ArchReg::int(9)), out1.dst.unwrap());
        r.squash(&out1);
        assert_eq!(r.mapping(ArchReg::int(9)), original);
    }

    #[test]
    fn scoreboard_tracks_readiness() {
        let mut prf = PhysRegFile::new(8);
        assert!(prf.is_ready(3, 0));
        prf.mark_pending(3);
        assert!(!prf.is_ready(3, 1_000_000));
        prf.mark_ready(3, 17);
        assert!(!prf.is_ready(3, 16));
        assert!(prf.is_ready(3, 17));
        assert_eq!(prf.ready_at(3), 17);
        assert_eq!(prf.len(), 8);
    }

    #[test]
    fn serial_chain_recycles_registers() {
        // A long chain of writes to the same architected register must work forever
        // as long as commits keep up.
        let mut r = Renamer::new(96);
        let mut prf = PhysRegFile::new(96);
        let mut outstanding = std::collections::VecDeque::new();
        for i in 0..1000 {
            let out = r.rename(&alu(4, 4), &mut prf).unwrap_or_else(|| {
                panic!("rename failed at iteration {i}");
            });
            outstanding.push_back(out);
            if outstanding.len() > 24 {
                r.commit(&outstanding.pop_front().unwrap());
            }
        }
    }

    #[test]
    #[should_panic]
    fn too_few_physical_registers_panics() {
        let _ = Renamer::new(NUM_ARCH_REGS as u32);
    }
}
