//! Simulation results and statistics.

use crate::bpred::BpredStats;
use crate::cache::HierarchyStats;
use flywheel_power::EnergyBreakdown;

/// How many instructions to warm up and to measure in one simulation run.
///
/// The paper fast-forwards 500 M instructions and measures 100 M; the reproduction
/// defaults to a scaled-down 200 k / 2 M (see EXPERIMENTS.md) but any budget can be
/// chosen per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimBudget {
    /// Instructions executed before measurement starts (caches and predictors warm
    /// up, statistics are discarded).
    pub warmup_instructions: u64,
    /// Instructions measured after warm-up.
    pub measured_instructions: u64,
}

impl SimBudget {
    /// Creates a budget.
    pub fn new(warmup_instructions: u64, measured_instructions: u64) -> Self {
        SimBudget {
            warmup_instructions,
            measured_instructions,
        }
    }

    /// A small budget suitable for unit tests (5 k warm-up, 30 k measured).
    pub fn test() -> Self {
        SimBudget::new(5_000, 30_000)
    }

    /// The default experiment budget used by the bench harness (200 k warm-up, 2 M
    /// measured).
    pub fn experiment() -> Self {
        SimBudget::new(200_000, 2_000_000)
    }

    /// Total instructions simulated.
    pub fn total(&self) -> u64 {
        self.warmup_instructions + self.measured_instructions
    }
}

impl Default for SimBudget {
    fn default() -> Self {
        SimBudget::experiment()
    }
}

/// The result of one simulation run (measured portion only).
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Instructions retired during measurement.
    pub instructions: u64,
    /// Back-end (execution core) cycles elapsed during measurement.
    pub be_cycles: u64,
    /// Front-end cycles elapsed during measurement.
    pub fe_cycles: u64,
    /// Simulated wall-clock time of the measured portion, in picoseconds.
    pub elapsed_ps: u64,
    /// Instructions squashed by mispredict recovery.
    pub squashed: u64,
    /// Branch predictor statistics (measured portion).
    pub bpred: BpredStats,
    /// Cache hierarchy statistics (measured portion).
    pub caches: HierarchyStats,
    /// Energy breakdown of the measured portion.
    pub energy: EnergyBreakdown,
    /// Fraction of back-end cycles spent with the front-end clock gated (always zero
    /// for the baseline machine; the Flywheel machine reports its trace-execution
    /// residency here).
    pub gated_frontend_fraction: f64,
}

impl SimResult {
    /// Instructions per back-end cycle.
    pub fn ipc(&self) -> f64 {
        if self.be_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.be_cycles as f64
        }
    }

    /// Execution time in microseconds.
    pub fn execution_time_us(&self) -> f64 {
        self.elapsed_ps as f64 * 1e-6
    }

    /// Average power in watts over the measured portion.
    pub fn average_power_w(&self) -> f64 {
        self.energy.average_power_w()
    }

    /// Total energy in millijoules over the measured portion.
    pub fn total_energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Performance relative to `baseline` (ratio of execution times; >1 means this
    /// run is faster).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        baseline.elapsed_ps as f64 / self.elapsed_ps as f64
    }

    /// Energy relative to `baseline` (<1 means this run consumes less energy).
    pub fn energy_ratio_over(&self, baseline: &SimResult) -> f64 {
        self.energy.total_pj() / baseline.energy.total_pj()
    }

    /// Energy-delay product relative to `baseline` (<1 means this run wins the
    /// combined energy/performance trade-off).
    pub fn edp_ratio_over(&self, baseline: &SimResult) -> f64 {
        self.energy.energy_delay_product_js() / baseline.energy.energy_delay_product_js()
    }

    /// Power relative to `baseline`.
    pub fn power_ratio_over(&self, baseline: &SimResult) -> f64 {
        self.average_power_w() / baseline.average_power_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(instructions: u64, be_cycles: u64, elapsed_ps: u64, energy_pj: f64) -> SimResult {
        SimResult {
            instructions,
            be_cycles,
            fe_cycles: be_cycles,
            elapsed_ps,
            squashed: 0,
            bpred: BpredStats::default(),
            caches: HierarchyStats::default(),
            energy: EnergyBreakdown {
                backend_pj: energy_pj,
                elapsed_ps,
                ..EnergyBreakdown::default()
            },
            gated_frontend_fraction: 0.0,
        }
    }

    #[test]
    fn ipc_and_time_metrics() {
        let r = result(1000, 500, 1_000_000, 5000.0);
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert!((r.execution_time_us() - 1e-6 * 1_000_000.0).abs() < 1e-12);
    }

    #[test]
    fn relative_metrics_compare_against_baseline() {
        let baseline = result(1000, 1000, 2_000_000, 8000.0);
        let faster = result(1000, 600, 1_000_000, 6000.0);
        assert!((faster.speedup_over(&baseline) - 2.0).abs() < 1e-9);
        assert!((faster.energy_ratio_over(&baseline) - 0.75).abs() < 1e-9);
        assert!(
            faster.power_ratio_over(&baseline) > 1.0,
            "same-ish energy in half the time is more power"
        );
        // EDP combines both: 0.75 energy ratio x 0.5 delay ratio.
        assert!((faster.edp_ratio_over(&baseline) - 0.375).abs() < 1e-9);
    }

    #[test]
    fn budgets_add_up() {
        let b = SimBudget::new(10, 20);
        assert_eq!(b.total(), 30);
        assert!(SimBudget::experiment().total() > SimBudget::test().total());
    }

    #[test]
    fn zero_cycle_result_has_zero_ipc() {
        let r = result(0, 0, 0, 0.0);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.average_power_w(), 0.0);
    }
}
