//! Branch prediction: gshare direction predictor, BTB and return-address stack.

use crate::config::BpredConfig;
use flywheel_isa::{CtrlKind, DynInst, Pc};

/// Statistics of the branch predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BpredStats {
    /// Conditional-branch predictions made.
    pub cond_predictions: u64,
    /// Conditional-branch direction mispredictions.
    pub cond_mispredicts: u64,
    /// Target mispredictions (returns and indirect jumps).
    pub target_mispredicts: u64,
    /// Total control-flow instructions seen.
    pub total_ctrl: u64,
}

impl BpredStats {
    /// Overall misprediction rate per control instruction.
    pub fn mispredict_rate(&self) -> f64 {
        if self.total_ctrl == 0 {
            0.0
        } else {
            (self.cond_mispredicts + self.target_mispredicts) as f64 / self.total_ctrl as f64
        }
    }

    /// Direction misprediction rate per conditional branch.
    pub fn cond_mispredict_rate(&self) -> f64 {
        if self.cond_predictions == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_predictions as f64
        }
    }
}

/// Gshare direction predictor with a direct-mapped BTB and a return-address stack,
/// as configured in the paper's Table 2 (12 bits of history, 2048 entries).
///
/// The simulators are trace driven, so prediction and training happen together:
/// [`GsharePredictor::predict`] makes an honest prediction from the current tables,
/// then immediately trains on the actual outcome carried by the [`DynInst`], and
/// reports whether the prediction was correct. Mispredicted branches stall fetch in
/// the pipeline until they resolve.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    cfg: BpredConfig,
    /// Two-bit saturating counters.
    pht: Vec<u8>,
    /// Global history register (low `history_bits` bits are valid).
    ghr: u64,
    /// Direct-mapped BTB of (tag, target).
    btb: Vec<Option<(u64, Pc)>>,
    /// Return-address stack.
    ras: Vec<Pc>,
    stats: BpredStats,
}

impl GsharePredictor {
    /// Creates a predictor with all counters weakly not-taken and an empty BTB/RAS.
    pub fn new(cfg: BpredConfig) -> Self {
        GsharePredictor {
            cfg,
            pht: vec![1; cfg.pht_entries as usize],
            ghr: 0,
            btb: vec![None; cfg.btb_entries as usize],
            ras: Vec::with_capacity(cfg.ras_entries as usize),
            stats: BpredStats::default(),
        }
    }

    fn pht_index(&self, pc: Pc) -> usize {
        let history_mask = (1u64 << self.cfg.history_bits) - 1;
        let idx = (pc.word_index() ^ (self.ghr & history_mask)) % self.pht_entries() as u64;
        idx as usize
    }

    fn pht_entries(&self) -> u32 {
        self.cfg.pht_entries
    }

    fn btb_slot(&self, pc: Pc) -> usize {
        (pc.word_index() % self.cfg.btb_entries as u64) as usize
    }

    /// Predicts the control instruction `d`, trains the tables on its actual outcome
    /// and returns `true` when the prediction (direction *and* target) was correct.
    ///
    /// Non-control instructions are always "predicted" correctly and do not touch the
    /// tables.
    pub fn predict(&mut self, d: &DynInst) -> bool {
        let Some(kind) = d.stat.ctrl() else {
            return true;
        };
        self.stats.total_ctrl += 1;
        match kind {
            CtrlKind::CondBranch => {
                self.stats.cond_predictions += 1;
                let idx = self.pht_index(d.pc);
                let counter = self.pht[idx];
                let predicted_taken = counter >= 2;
                // Train the counter and the global history with the actual outcome.
                self.pht[idx] = if d.taken {
                    (counter + 1).min(3)
                } else {
                    counter.saturating_sub(1)
                };
                self.ghr = (self.ghr << 1) | u64::from(d.taken);
                // Taken branches also need the BTB to provide the target; a missing
                // or stale BTB entry on a predicted-taken branch is a misfetch that
                // we fold into the direction-misprediction count.
                let mut correct = predicted_taken == d.taken;
                if predicted_taken && d.taken {
                    correct &= self.predict_target(d) == Some(d.next_pc);
                }
                self.train_target(d);
                if !correct {
                    self.stats.cond_mispredicts += 1;
                }
                correct
            }
            CtrlKind::Jump => {
                // Direct, unconditional: decoded target, always correct.
                self.train_target(d);
                true
            }
            CtrlKind::Call => {
                // Push the return address; the call target itself is direct.
                if self.ras.len() == self.cfg.ras_entries as usize {
                    self.ras.remove(0);
                }
                self.ras.push(d.pc.next());
                self.train_target(d);
                true
            }
            CtrlKind::Return => {
                let predicted = self.ras.pop();
                let correct = predicted == Some(d.next_pc);
                if !correct {
                    self.stats.target_mispredicts += 1;
                }
                correct
            }
            CtrlKind::IndirectJump => {
                let predicted = self.predict_target(d);
                let correct = predicted == Some(d.next_pc);
                self.train_target(d);
                if !correct {
                    self.stats.target_mispredicts += 1;
                }
                correct
            }
        }
    }

    /// Trains the tables on the actual outcome of `d` without making (or scoring) a
    /// prediction.
    ///
    /// The Flywheel machine uses this for control instructions replayed from the
    /// Execution Cache: the front end (and therefore the predictor lookup) is clock
    /// gated, but retirement still sends predictor updates so that the tables stay
    /// coherent with the full instruction stream for the next trace-creation phase.
    pub fn train(&mut self, d: &DynInst) {
        let Some(kind) = d.stat.ctrl() else { return };
        match kind {
            CtrlKind::CondBranch => {
                let idx = self.pht_index(d.pc);
                let counter = self.pht[idx];
                self.pht[idx] = if d.taken {
                    (counter + 1).min(3)
                } else {
                    counter.saturating_sub(1)
                };
                self.ghr = (self.ghr << 1) | u64::from(d.taken);
                self.train_target(d);
            }
            CtrlKind::Call => {
                if self.ras.len() == self.cfg.ras_entries as usize {
                    self.ras.remove(0);
                }
                self.ras.push(d.pc.next());
                self.train_target(d);
            }
            CtrlKind::Return => {
                self.ras.pop();
            }
            CtrlKind::Jump | CtrlKind::IndirectJump => self.train_target(d),
        }
    }

    fn predict_target(&self, d: &DynInst) -> Option<Pc> {
        let slot = self.btb_slot(d.pc);
        match self.btb[slot] {
            Some((tag, target)) if tag == d.pc.addr() => Some(target),
            _ => None,
        }
    }

    fn train_target(&mut self, d: &DynInst) {
        if d.taken {
            let slot = self.btb_slot(d.pc);
            self.btb[slot] = Some((d.pc.addr(), d.next_pc));
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> BpredStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flywheel_isa::{ArchReg, StaticInst};

    fn branch(pc: u64, taken: bool, target: u64, seq: u64) -> DynInst {
        let pc = Pc::new(pc);
        DynInst {
            seq,
            pc,
            stat: StaticInst::cond_branch(ArchReg::int(1), None),
            taken,
            next_pc: if taken { Pc::new(target) } else { pc.next() },
            mem: None,
        }
    }

    fn predictor() -> GsharePredictor {
        GsharePredictor::new(BpredConfig::paper())
    }

    #[test]
    fn learns_a_strongly_biased_branch() {
        let mut p = predictor();
        let mut correct = 0;
        let n = 200;
        for i in 0..n {
            if p.predict(&branch(0x1000, true, 0x2000, i)) {
                correct += 1;
            }
        }
        // The first handful of predictions walk through cold PHT entries while the
        // global history register fills up; after that the branch is always right.
        assert!(correct > n - 20, "only {correct}/{n} correct");
    }

    #[test]
    fn alternating_pattern_is_learned_by_history() {
        let mut p = predictor();
        let mut correct_late = 0;
        for i in 0..400u64 {
            let taken = i % 2 == 0;
            let ok = p.predict(&branch(0x1000, taken, 0x2000, i));
            if i >= 200 && ok {
                correct_late += 1;
            }
        }
        assert!(
            correct_late > 180,
            "gshare should learn TNTN..., got {correct_late}/200"
        );
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut p = predictor();
        // A pseudo-random but deterministic direction sequence.
        let mut x = 0x12345678u64;
        let mut mispredicts = 0;
        let n = 2000;
        for i in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 33) & 1 == 1;
            if !p.predict(&branch(0x1000, taken, 0x2000, i)) {
                mispredicts += 1;
            }
        }
        let rate = mispredicts as f64 / n as f64;
        assert!(rate > 0.3, "random branch mispredict rate {rate}");
    }

    #[test]
    fn calls_and_returns_use_the_ras() {
        let mut p = predictor();
        let call = DynInst {
            seq: 0,
            pc: Pc::new(0x1000),
            stat: StaticInst::call(),
            taken: true,
            next_pc: Pc::new(0x5000),
            mem: None,
        };
        assert!(p.predict(&call));
        let ret = DynInst {
            seq: 1,
            pc: Pc::new(0x5004),
            stat: StaticInst::ret(),
            taken: true,
            next_pc: Pc::new(0x1004), // return address = call pc + 4
            mem: None,
        };
        assert!(p.predict(&ret), "return should be predicted by the RAS");
        // A second return with an empty RAS cannot be predicted.
        let ret2 = DynInst {
            seq: 2,
            ..ret.clone()
        };
        assert!(!p.predict(&ret2));
        assert_eq!(p.stats().target_mispredicts, 1);
    }

    #[test]
    fn jumps_are_always_correct() {
        let mut p = predictor();
        let jump = DynInst {
            seq: 0,
            pc: Pc::new(0x1000),
            stat: StaticInst::jump(),
            taken: true,
            next_pc: Pc::new(0x9000),
            mem: None,
        };
        for _ in 0..10 {
            assert!(p.predict(&jump));
        }
        assert_eq!(p.stats().mispredict_rate(), 0.0);
    }

    #[test]
    fn non_control_instructions_do_not_touch_stats() {
        let mut p = predictor();
        let alu = DynInst {
            seq: 0,
            pc: Pc::new(0x1000),
            stat: StaticInst::alu(ArchReg::int(1), ArchReg::int(2), None),
            taken: false,
            next_pc: Pc::new(0x1004),
            mem: None,
        };
        assert!(p.predict(&alu));
        assert_eq!(p.stats().total_ctrl, 0);
    }

    #[test]
    fn stats_rates_are_consistent() {
        let mut p = predictor();
        for i in 0..50 {
            p.predict(&branch(0x1000 + 8 * (i % 7), i % 3 != 0, 0x4000, i));
        }
        let s = p.stats();
        assert!(s.cond_predictions >= s.cond_mispredicts);
        assert!(s.mispredict_rate() <= 1.0);
        assert!(s.cond_mispredict_rate() <= 1.0);
    }
}
