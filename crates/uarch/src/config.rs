//! Configuration of the baseline out-of-order machine.

use flywheel_isa::FuKind;
use flywheel_power::PowerConfig;
use flywheel_timing::{ClockPlan, LsqDomainPlan, TechNode};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Creates a cache configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero or the line size is not a power of two.
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u32) -> Self {
        assert!(size_bytes > 0 && assoc > 0 && line_bytes.is_power_of_two());
        CacheConfig {
            size_bytes,
            assoc,
            line_bytes,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.assoc as u64 * self.line_bytes as u64)).max(1) as usize
    }
}

/// Number of functional units of each kind (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Integer ALUs.
    pub int_alu: u32,
    /// Integer multiply/divide units.
    pub int_muldiv: u32,
    /// Memory ports.
    pub mem_ports: u32,
    /// Floating-point adders.
    pub fp_add: u32,
    /// Floating-point multiply/divide units.
    pub fp_muldiv: u32,
}

impl FuConfig {
    /// The paper's Table 2 functional-unit mix.
    pub fn paper() -> Self {
        FuConfig {
            int_alu: 4,
            int_muldiv: 2,
            mem_ports: 2,
            fp_add: 2,
            fp_muldiv: 1,
        }
    }

    /// Number of units of `kind`.
    pub fn count(&self, kind: FuKind) -> u32 {
        match kind {
            FuKind::IntAlu => self.int_alu,
            FuKind::IntMulDiv => self.int_muldiv,
            FuKind::MemPort => self.mem_ports,
            FuKind::FpAdd => self.fp_add,
            FuKind::FpMulDiv => self.fp_muldiv,
        }
    }
}

/// Branch predictor configuration (gshare + BTB + return-address stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpredConfig {
    /// Global history length in bits.
    pub history_bits: u32,
    /// Number of two-bit counters in the pattern history table.
    pub pht_entries: u32,
    /// Number of BTB entries (direct mapped).
    pub btb_entries: u32,
    /// Return-address-stack depth.
    pub ras_entries: u32,
}

impl BpredConfig {
    /// The paper's predictor: gshare with 12 bits of history and 2048 entries.
    pub fn paper() -> Self {
        BpredConfig {
            history_bits: 12,
            pht_entries: 2048,
            btb_entries: 2048,
            ras_entries: 16,
        }
    }
}

/// Full configuration of the baseline superscalar, out-of-order machine
/// (paper Table 2), plus the knobs used by the Figure 2 pipeline-loop study and by
/// the Dual-Clock Issue Window.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// Process technology node (drives clock periods and the power model).
    pub node: TechNode,
    /// Clock-domain plan. The fully synchronous baseline uses the same period for
    /// every domain; the Dual-Clock Issue Window front-end uses a faster front-end
    /// period.
    pub clocks: ClockPlan,
    /// Instructions fetched per I-cache access (aligned group).
    pub fetch_width: u32,
    /// Instructions renamed/dispatched per front-end cycle.
    pub dispatch_width: u32,
    /// Instructions selected for execution per back-end cycle.
    pub issue_width: u32,
    /// Instructions retired per back-end cycle.
    pub commit_width: u32,
    /// Number of front-end stages between fetch and dispatch (fetch, decode, rename,
    /// dispatch = 4 in the nine-stage baseline). Figure 2's "extra front-end stage"
    /// experiment adds one.
    pub front_end_stages: u32,
    /// Issue Window entries.
    pub iw_entries: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Load/store queue entries.
    pub lsq_entries: u32,
    /// Physical registers (shared integer/FP pool in the R10000-style renamer).
    pub phys_regs: u32,
    /// Register-file read latency in back-end cycles.
    pub reg_read_cycles: u32,
    /// If true, Wake-up and Select are pipelined into two stages: dependent
    /// instructions can no longer issue back-to-back (Figure 2's second experiment).
    pub pipelined_wakeup: bool,
    /// Synchronization latency, in back-end cycles, before an instruction inserted in
    /// the Issue Window becomes visible to Wake-up/Select (0 for the fully
    /// synchronous machine, ≥1 for the Dual-Clock Issue Window).
    pub sync_latency_be_cycles: u32,
    /// Additional front-end cycles charged on a fetch redirect crossing the
    /// clock-domain boundary (mispredict recovery FIFO).
    pub redirect_sync_fe_cycles: u32,
    /// L1 instruction cache.
    pub icache: CacheConfig,
    /// L1 data cache.
    pub dcache: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// L1 hit latency in consumer-domain cycles (pipelined).
    pub l1_hit_cycles: u32,
    /// L2 hit latency in baseline cycles.
    pub l2_hit_cycles: u32,
    /// Main-memory latency in baseline cycles ("scaled accordingly when clock speed
    /// is increased", i.e. constant in wall-clock time).
    pub mem_cycles: u32,
    /// Branch predictor.
    pub bpred: BpredConfig,
    /// Functional-unit mix.
    pub fus: FuConfig,
}

impl BaselineConfig {
    /// The paper's baseline machine (Table 2) at the given technology node, fully
    /// synchronous.
    pub fn paper(node: TechNode) -> Self {
        BaselineConfig {
            node,
            clocks: ClockPlan::synchronous(node),
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 6,
            commit_width: 4,
            front_end_stages: 4,
            iw_entries: 128,
            rob_entries: 128,
            lsq_entries: 64,
            phys_regs: 192,
            reg_read_cycles: 1,
            pipelined_wakeup: false,
            sync_latency_be_cycles: 0,
            redirect_sync_fe_cycles: 0,
            icache: CacheConfig::new(64 * 1024, 2, 64),
            dcache: CacheConfig::new(64 * 1024, 4, 64),
            l2: CacheConfig::new(512 * 1024, 4, 128),
            l1_hit_cycles: 2,
            l2_hit_cycles: 10,
            mem_cycles: 100,
            bpred: BpredConfig::paper(),
            fus: FuConfig::paper(),
        }
    }

    /// The paper default at 0.13 µm (the node used for the main performance/energy
    /// comparison).
    pub fn paper_default() -> Self {
        BaselineConfig::paper(TechNode::N130)
    }

    /// Returns a copy with one extra front-end stage (Figure 2, light bars).
    pub fn with_extra_frontend_stage(mut self) -> Self {
        self.front_end_stages += 1;
        self
    }

    /// Returns a copy with the Wake-up/Select loop pipelined over two cycles
    /// (Figure 2, dark bars).
    pub fn with_pipelined_wakeup(mut self) -> Self {
        self.pipelined_wakeup = true;
        self
    }

    /// Returns a copy configured as the front-end half of a Dual-Clock Issue Window:
    /// a faster front-end clock plus the synchronization latencies it requires.
    pub fn with_dual_clock_frontend(mut self, frontend_speedup_pct: u32) -> Self {
        self.clocks = ClockPlan::with_speedups(self.node, frontend_speedup_pct, 0);
        self.sync_latency_be_cycles = 1;
        self.redirect_sync_fe_cycles = 1;
        self
    }

    /// The structural power-model parameters this machine implies.
    ///
    /// This is the single construction point for the energy model's geometry:
    /// `BaselineSim` builds its `PowerModel` from it, and the scenario
    /// invariant layer rebuilds the identical model to cross-check the
    /// attributed leakage a run reports. Flywheel-only knobs (Execution Cache
    /// size, 512-entry register file) keep their paper defaults here; a
    /// baseline-kind energy account never reads them.
    pub fn power_config(&self) -> PowerConfig {
        PowerConfig {
            node: self.node,
            iw_entries: self.iw_entries,
            iw_width: self.issue_width,
            fetch_width: self.fetch_width,
            rf_entries: self.phys_regs,
            icache_bytes: self.icache.size_bytes,
            dcache_bytes: self.dcache.size_bytes,
            l2_bytes: self.l2.size_bytes,
            rob_entries: self.rob_entries,
            lsq_entries: self.lsq_entries,
            bpred_entries: self.bpred.pht_entries,
            ..PowerConfig::paper(self.node)
        }
    }

    /// L2 hit latency in picoseconds (constant across clock plans: it is set in
    /// baseline cycles).
    pub fn l2_latency_ps(&self) -> u64 {
        self.l2_hit_cycles as u64 * self.clocks.baseline_period_ps
    }

    /// Main-memory latency in picoseconds.
    pub fn mem_latency_ps(&self) -> u64 {
        self.mem_cycles as u64 * self.clocks.baseline_period_ps
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.issue_width == 0 || self.commit_width == 0 {
            return Err("widths must be non-zero".into());
        }
        if self.iw_entries == 0 || self.rob_entries == 0 || self.lsq_entries == 0 {
            return Err("window/buffer sizes must be non-zero".into());
        }
        if (self.phys_regs as usize) < flywheel_isa::NUM_ARCH_REGS + 8 {
            return Err("physical register file must exceed the architected state".into());
        }
        if self.front_end_stages == 0 {
            return Err("the front end must have at least one stage".into());
        }
        Ok(())
    }
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig::paper_default()
    }
}

/// Configuration of the multi-domain machine: the baseline out-of-order core
/// with the LSQ + D-cache access pipeline split into its own, faster clock
/// domain (Table 1 gives the D-cache headroom over the Issue Window at every
/// node). Loads pay a synchronizer crossing in each direction but the cache
/// access itself completes in the faster domain.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiDomainConfig {
    /// The underlying baseline machine (including its FE/BE clock plan).
    pub base: BaselineConfig,
    /// The LSQ/D-cache clock domain.
    pub lsq: LsqDomainPlan,
}

impl MultiDomainConfig {
    /// The paper-geometry multi-domain machine at `node`: the Table 2 baseline
    /// with the LSQ domain at the D-cache's Table 1 frequency.
    pub fn paper(node: TechNode) -> Self {
        MultiDomainConfig {
            base: BaselineConfig::paper(node),
            lsq: LsqDomainPlan::paper(node),
        }
    }

    /// Like [`MultiDomainConfig::paper`], with the dual-clock front-end speed-up
    /// applied on top (the clock axis of the scenario engine).
    pub fn paper_with_frontend(node: TechNode, frontend_pct: u32) -> Self {
        let mut cfg = MultiDomainConfig::paper(node);
        if frontend_pct > 0 {
            cfg.base = cfg.base.with_dual_clock_frontend(frontend_pct);
        }
        cfg
    }

    /// The structural power-model parameters this machine implies (identical to
    /// the underlying baseline: splitting a clock domain moves no geometry).
    pub fn power_config(&self) -> PowerConfig {
        self.base.power_config()
    }

    /// Validates internal consistency, including that the LSQ domain does not
    /// exceed the D-cache's achievable frequency at the configured node.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        let violations = self.lsq.validate_against(self.base.node);
        if !violations.is_empty() {
            return Err(format!(
                "LSQ domain exceeds achievable module frequencies: {violations:?}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_matches_table2() {
        let c = BaselineConfig::paper_default();
        c.validate().unwrap();
        assert_eq!(c.iw_entries, 128);
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.lsq_entries, 64);
        assert_eq!(c.phys_regs, 192);
        assert_eq!(c.icache.size_bytes, 64 * 1024);
        assert_eq!(c.icache.assoc, 2);
        assert_eq!(c.dcache.assoc, 4);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2_hit_cycles, 10);
        assert_eq!(c.mem_cycles, 100);
        assert_eq!(c.bpred.history_bits, 12);
        assert_eq!(c.bpred.pht_entries, 2048);
        assert_eq!(c.fus.count(flywheel_isa::FuKind::IntAlu), 4);
        assert_eq!(c.fus.count(flywheel_isa::FuKind::FpMulDiv), 1);
    }

    #[test]
    fn figure2_variants_modify_the_right_knobs() {
        let base = BaselineConfig::paper_default();
        let extra = base.clone().with_extra_frontend_stage();
        assert_eq!(extra.front_end_stages, base.front_end_stages + 1);
        let piped = base.clone().with_pipelined_wakeup();
        assert!(piped.pipelined_wakeup && !base.pipelined_wakeup);
    }

    #[test]
    fn dual_clock_frontend_speeds_up_only_the_front_end() {
        let c = BaselineConfig::paper_default().with_dual_clock_frontend(50);
        assert!(c.clocks.frontend_speedup() > 1.45);
        assert!((c.clocks.backend_speedup() - 1.0).abs() < 0.01);
        assert_eq!(c.sync_latency_be_cycles, 1);
    }

    #[test]
    fn memory_latencies_are_constant_in_wall_clock() {
        let sync = BaselineConfig::paper_default();
        let dual = BaselineConfig::paper_default().with_dual_clock_frontend(100);
        assert_eq!(sync.mem_latency_ps(), dual.mem_latency_ps());
        assert_eq!(sync.l2_latency_ps(), dual.l2_latency_ps());
    }

    #[test]
    fn cache_sets_are_computed_correctly() {
        let c = CacheConfig::new(64 * 1024, 2, 64);
        assert_eq!(c.sets(), 512);
        let l2 = CacheConfig::new(512 * 1024, 4, 128);
        assert_eq!(l2.sets(), 1024);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = BaselineConfig::paper_default();
        c.phys_regs = 32;
        assert!(c.validate().is_err());
        let mut c2 = BaselineConfig::paper_default();
        c2.front_end_stages = 0;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn multi_domain_paper_config_is_valid_and_faster_than_the_core() {
        let c = MultiDomainConfig::paper(TechNode::N130);
        c.validate().unwrap();
        assert!(c.lsq.period_ps < c.base.clocks.backend_period_ps);
        assert_eq!(c.power_config(), c.base.power_config());
        let fe = MultiDomainConfig::paper_with_frontend(TechNode::N130, 50);
        fe.validate().unwrap();
        assert!(fe.base.clocks.frontend_speedup() > 1.45);
        assert_eq!(fe.base.sync_latency_be_cycles, 1);
        let iso = MultiDomainConfig::paper_with_frontend(TechNode::N130, 0);
        assert_eq!(iso, MultiDomainConfig::paper(TechNode::N130));
    }

    #[test]
    fn multi_domain_rejects_overclocked_lsq_plans() {
        let mut c = MultiDomainConfig::paper(TechNode::N130);
        c.lsq.period_ps /= 2;
        assert!(c.validate().is_err());
    }
}
