//! # flywheel-uarch
//!
//! A cycle-accurate, trace-driven model of the paper's baseline machine: a nine-stage,
//! four-way superscalar, out-of-order processor with a monolithic 128-entry Issue
//! Window (Table 2), in the spirit of the authors' modified SimpleScalar simulator.
//!
//! The crate provides both the complete baseline simulator ([`BaselineSim`]) and the
//! individual structures it is built from, which `flywheel-core` reuses for the
//! Flywheel machine:
//!
//! * [`Cache`] / [`MemoryHierarchy`] — split L1s, unified L2, flat main memory.
//! * [`GsharePredictor`] — gshare + BTB + return-address stack.
//! * [`Renamer`] / [`PhysRegFile`] — R10000-style renaming and the ready scoreboard.
//! * [`FunctionalUnits`] — per-kind issue bandwidth (Table 2 mix).
//! * [`InflightTable`] / [`IssueScheduler`] / [`StoreIndex`] — the slab-indexed,
//!   allocation-free in-flight bookkeeping both simulator kernels run their
//!   per-cycle hot loop on (see `ARCHITECTURE.md`).
//! * [`BaselineConfig`] — all structural and clocking knobs, including the Figure 2
//!   variations (extra front-end stage, pipelined Wake-up/Select) and the Dual-Clock
//!   Issue Window front-end.
//!
//! The simulator consumes [`flywheel_isa::DynInst`] streams (usually from
//! `flywheel_workloads::TraceGenerator`), models two clock domains with arbitrary
//! period ratios, and reports performance plus a Wattch-style energy breakdown
//! ([`SimResult`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bpred;
mod cache;
mod config;
mod fu;
mod inflight;
mod pipeline;
mod regs;
mod stats;
pub mod telemetry;
pub mod watchdog;

pub use bpred::{BpredStats, GsharePredictor};
pub use cache::{AccessOutcome, Cache, HierarchyStats, MemoryHierarchy};
pub use config::{BaselineConfig, BpredConfig, CacheConfig, FuConfig, MultiDomainConfig};
pub use fu::FunctionalUnits;
pub use inflight::{
    CompletionQueue, EntryState, InflightEntry, InflightTable, IssueScheduler, StoreIndex,
};
pub use pipeline::BaselineSim;
pub use regs::{PhysReg, PhysRegFile, RenameOutcome, Renamer, SrcList};
pub use stats::{SimBudget, SimResult};
