//! Black-box tests of the `flywheel-serve` daemon: a real process, a real
//! TCP port, real worker processes behind it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fw-http-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns the daemon on an ephemeral port and returns it with the discovered
/// `host:port` (parsed from the "listening on" line).
fn spawn_serve(dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_flywheel-serve"))
        .current_dir(dir)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--store",
            "serve.store",
            "--shards",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .trim()
        .rsplit_once("http://")
        .unwrap_or_else(|| panic!("unexpected banner '{line}'"))
        .1
        .to_owned();
    (child, addr)
}

/// One `Connection: close` request; returns (status, body).
fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    s.flush().unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("unparseable response '{response}'"))
        .parse()
        .unwrap();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn wait_exit(child: &mut Child, within: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + within;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "daemon did not exit in {within:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn sweep_lifecycle_over_http() {
    let dir = temp_dir("lifecycle");
    let (mut child, addr) = spawn_serve(&dir);

    let (status, body) = request(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\":true"), "{body}");

    // Unknown endpoints and bad specs are client errors, not crashes.
    let (status, _) = request(&addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, body) = request(&addr, "POST", "/sweep", "preset=bogus");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown scenario preset"), "{body}");

    // A cold sweep is queued...
    let spec = "preset=smoke;warmup=100;measured=300";
    let (status, body) = request(&addr, "POST", "/sweep", spec);
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"queued\":true"), "{body}");

    // ...and reaches state=done, visible over /status.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(&addr, "GET", "/status", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"schema\":\"flywheel-serve/1\""), "{body}");
        // Match the *job* entry ("state" followed by "detail"), not a
        // per-shard worker entry, and require the executor to be idle — a
        // worker can report done while the job is still merging.
        if body.contains("\"current\":null") && body.contains("\"state\":\"done\",\"detail\"") {
            break;
        }
        assert!(
            !body.contains("\"state\":\"failed\"") && !body.contains("\"state\":\"degraded\""),
            "fault-free sweep must not degrade: {body}"
        );
        assert!(Instant::now() < deadline, "sweep did not finish: {body}");
        std::thread::sleep(Duration::from_millis(100));
    }

    // Resubmitting the same spec answers warm from the store, unqueued.
    let (status, body) = request(&addr, "POST", "/sweep", spec);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"warm\":true"), "{body}");
    assert!(body.contains("\"cells\":30"), "{body}");

    // POST /shutdown drains and the daemon exits 0.
    let (status, body) = request(&addr, "POST", "/shutdown", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"draining\":true"), "{body}");
    let exit = wait_exit(&mut child, Duration::from_secs(30));
    assert!(exit.success(), "drain must exit 0, got {exit}");

    // The store the daemon leaves behind exists on disk; its validity is
    // already covered by the warm-hit assertion above (a warm answer means
    // every record parsed and matched its key).
    assert!(dir.join("serve.store").exists());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sigterm_drains_in_flight_sweep_and_exits_zero() {
    let dir = temp_dir("sigterm");
    let (mut child, addr) = spawn_serve(&dir);

    // Put a sweep in flight, then SIGTERM mid-run: the daemon must finish
    // the job (drain), not abandon it.
    let (status, _) = request(
        &addr,
        "POST",
        "/sweep",
        "preset=smoke;warmup=100;measured=300",
    );
    assert_eq!(status, 202);
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());
    let exit = wait_exit(&mut child, Duration::from_secs(60));
    assert!(exit.success(), "SIGTERM drain must exit 0, got {exit}");

    // The drained store holds only CRC-clean records (the sweep either
    // finished whole or its shards healed on the next run; either way the
    // file parses).
    assert!(dir.join("serve.store").exists());

    std::fs::remove_dir_all(&dir).unwrap();
}
