//! The sweep queue behind `flywheel-serve`.
//!
//! A [`SweepService`] owns one background executor thread and a queue of
//! accepted scenarios. Jobs run strictly serially — each job already fans out
//! into [`SupervisorConfig::shards`] worker *processes* via
//! [`run_supervised`], and they all share one result store, so running two
//! supervised sweeps at once would only fight over cores and the store file.
//!
//! The fast path skips the queue entirely: when the executor is idle and
//! every cell of a submitted scenario is already in the store, `submit`
//! answers [`Submitted::Warm`] straight from the store index (microseconds,
//! no worker spawned). When the executor is busy the same scenario is queued
//! anyway — [`run_supervised`] short-circuits fully warm grids itself, so the
//! job still completes in milliseconds once its turn comes; the queue just
//! serializes access to the store.
//!
//! Shutdown is a *drain*: [`SweepService::shutdown`] cancels everything still
//! queued, lets the in-flight job (and its worker processes) finish, then
//! joins the executor. Nothing half-swept is ever abandoned — and even if the
//! daemon is SIGKILLed instead, the per-shard stores are CRC-framed and the
//! next sweep heals from them.

use crate::http::json_escape;
use flywheel_bench::scenario::Scenario;
use flywheel_bench::spec::scenario_from_spec;
use flywheel_bench::store::ResultStore;
use flywheel_bench::supervisor::{
    run_supervised, shard_status_path, SupervisorConfig, WorkerState, WorkerStatus,
};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Static configuration of a [`SweepService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The shared result store every job sweeps into.
    pub store: PathBuf,
    /// Supervision policy handed to [`run_supervised`] for every job.
    pub supervisor: SupervisorConfig,
}

/// Lifecycle of one accepted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// The executor is sweeping it right now.
    Running,
    /// Finished with a record for every grid cell.
    Done,
    /// Finished, but some cells are missing from the store (degraded mode).
    Degraded,
    /// The sweep itself errored (bad store, spawn failure, merge conflict).
    Failed,
    /// Cancelled by shutdown before it ran.
    Cancelled,
}

impl JobState {
    /// Stable lower-case tag used in the JSON surfaces.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Degraded => "degraded",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One accepted job, as reported by `GET /status`.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Service-assigned job id (monotone from 1).
    pub id: u64,
    /// The scenario's name.
    pub name: String,
    /// Grid cells in the scenario.
    pub cells: usize,
    /// Whether this job's workers arm kernel telemetry.
    pub telemetry: bool,
    /// Current lifecycle state.
    pub state: JobState,
    /// Human-readable outcome summary (empty until the job finishes).
    pub detail: String,
}

/// What [`SweepService::submit`] did with a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submitted {
    /// Every cell was already in the store; nothing was queued.
    Warm {
        /// Grid cells answered from the store.
        cells: usize,
    },
    /// The scenario was queued as a job.
    Queued {
        /// Assigned job id.
        id: u64,
        /// Grid cells the job will sweep.
        cells: usize,
        /// Jobs ahead of it in the queue when it was accepted.
        position: usize,
    },
}

struct State {
    next_id: u64,
    queue: VecDeque<(u64, Scenario, bool)>,
    jobs: Vec<JobRecord>,
    current: Option<u64>,
    draining: bool,
}

struct Inner {
    cfg: ServeConfig,
    state: Mutex<State>,
    wake: Condvar,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, State> {
        // A panicking sweep thread must not brick /status; the state is
        // plain bookkeeping and stays consistent between lock points.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn set_job(&self, st: &mut State, id: u64, state: JobState, detail: String) {
        if let Some(job) = st.jobs.iter_mut().find(|j| j.id == id) {
            job.state = state;
            job.detail = detail;
        }
    }
}

/// The sweep queue plus its executor thread. See the module docs.
pub struct SweepService {
    inner: Arc<Inner>,
    executor: Option<JoinHandle<()>>,
}

impl SweepService {
    /// Starts a service (and its executor thread) over `cfg`.
    pub fn start(cfg: ServeConfig) -> SweepService {
        let inner = Arc::new(Inner {
            cfg,
            state: Mutex::new(State {
                next_id: 1,
                queue: VecDeque::new(),
                jobs: Vec::new(),
                current: None,
                draining: false,
            }),
            wake: Condvar::new(),
        });
        let worker = Arc::clone(&inner);
        let executor = std::thread::Builder::new()
            .name("sweep-executor".to_owned())
            .spawn(move || executor_loop(&worker))
            .expect("spawning the sweep executor thread");
        SweepService {
            inner,
            executor: Some(executor),
        }
    }

    /// Parses `spec` and either answers it warm from the store or queues it.
    ///
    /// The body may carry one service-level field on top of the scenario
    /// grammar: `telemetry=on|off` toggles kernel telemetry for this job
    /// (default: on iff the daemon was started with `--telemetry`; `on`
    /// without that flag is rejected, since there is no log to drain into).
    ///
    /// Warm short-circuit: only taken while the executor is idle, so the
    /// store index being read is not concurrently appended to by a merge.
    pub fn submit(&self, spec: &str) -> Result<Submitted, String> {
        let (spec, toggle) = split_telemetry_toggle(spec)?;
        let telemetry = match toggle {
            Some(true) if self.inner.cfg.supervisor.telemetry.is_none() => {
                return Err(
                    "telemetry=on, but the daemon was started without --telemetry".to_owned(),
                )
            }
            Some(on) => on,
            None => self.inner.cfg.supervisor.telemetry.is_some(),
        };
        let scenario = scenario_from_spec(&spec)?;
        let grid = scenario.expand();
        let cells = grid.len();
        let budget = scenario.budget;

        let mut st = self.inner.lock();
        if st.draining {
            return Err("service is draining; not accepting new sweeps".to_owned());
        }
        if st.current.is_none() && st.queue.is_empty() {
            if let Ok(store) = ResultStore::open(&self.inner.cfg.store) {
                if grid.iter().all(|c| store.contains(&c.key(budget))) {
                    return Ok(Submitted::Warm { cells });
                }
            }
        }
        let id = st.next_id;
        st.next_id += 1;
        let position = st.queue.len();
        st.jobs.push(JobRecord {
            id,
            name: scenario.name.clone(),
            cells,
            telemetry,
            state: JobState::Queued,
            detail: String::new(),
        });
        st.queue.push_back((id, scenario, telemetry));
        self.inner.wake.notify_all();
        Ok(Submitted::Queued {
            id,
            cells,
            position,
        })
    }

    /// Snapshot of every accepted job, oldest first.
    pub fn jobs(&self) -> Vec<JobRecord> {
        self.inner.lock().jobs.clone()
    }

    /// Renders the `GET /status` body: queue depth, job table, and — while a
    /// job is running — the live per-shard worker heartbeats read from the
    /// supervisor's status files.
    pub fn status_json(&self) -> String {
        let st = self.inner.lock();
        let jobs: Vec<String> = st
            .jobs
            .iter()
            .map(|j| {
                format!(
                    "{{\"id\":{},\"name\":\"{}\",\"cells\":{},\"telemetry\":{},\"state\":\"{}\",\"detail\":\"{}\"}}",
                    j.id,
                    json_escape(&j.name),
                    j.cells,
                    j.telemetry,
                    j.state.name(),
                    json_escape(&j.detail)
                )
            })
            .collect();
        let workers: Vec<String> = if st.current.is_some() {
            let cfg = &self.inner.cfg.supervisor;
            (0..cfg.shards)
                .filter_map(|shard| {
                    WorkerStatus::read(&shard_status_path(&cfg.status_dir, shard))
                        .ok()
                        .flatten()
                })
                .map(|w| {
                    format!(
                        "{{\"shard\":{},\"pid\":{},\"beat\":{},\"done\":{},\"total\":{},\"hits\":{},\"simulated\":{},\"state\":\"{}\"}}",
                        w.shard,
                        w.pid,
                        w.beat,
                        w.done,
                        w.total,
                        w.hits,
                        w.simulated,
                        match w.state {
                            WorkerState::Running => "running",
                            WorkerState::Done => "done",
                        }
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        format!(
            "{{\"schema\":\"flywheel-serve/1\",\"draining\":{},\"queue_depth\":{},\"current\":{},\"jobs\":[{}],\"workers\":[{}]}}",
            st.draining,
            st.queue.len(),
            st.current.map_or("null".to_owned(), |id| id.to_string()),
            jobs.join(","),
            workers.join(",")
        )
    }

    /// Renders the `GET /healthz` body — cheap liveness, no store access.
    pub fn healthz_json(&self) -> String {
        let st = self.inner.lock();
        format!(
            "{{\"ok\":true,\"draining\":{},\"queue_depth\":{},\"store\":\"{}\"}}",
            st.draining,
            st.queue.len(),
            json_escape(&self.inner.cfg.store.display().to_string())
        )
    }

    /// Drains the service: cancels queued jobs, waits for the in-flight job
    /// (and its worker processes) to finish, and joins the executor.
    pub fn shutdown(mut self) {
        {
            let mut st = self.inner.lock();
            st.draining = true;
            let cancelled: Vec<u64> = st.queue.drain(..).map(|(id, _, _)| id).collect();
            for id in cancelled {
                self.inner.set_job(
                    &mut st,
                    id,
                    JobState::Cancelled,
                    "cancelled by shutdown".to_owned(),
                );
            }
            self.inner.wake.notify_all();
        }
        if let Some(executor) = self.executor.take() {
            let _ = executor.join();
        }
    }
}

/// Splits a `POST /sweep` body into the scenario spec proper and the
/// service-level `telemetry=on|off` toggle (which is not a scenario field —
/// `scenario_from_spec` would reject it as unknown).
fn split_telemetry_toggle(body: &str) -> Result<(String, Option<bool>), String> {
    let mut toggle = None;
    let mut rest: Vec<&str> = Vec::new();
    for part in body.split(';') {
        match part.trim().split_once('=') {
            Some(("telemetry", value)) => {
                toggle = Some(match value.trim() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("telemetry must be 'on' or 'off', got '{other}'")),
                })
            }
            _ => rest.push(part),
        }
    }
    Ok((rest.join(";"), toggle))
}

fn executor_loop(inner: &Inner) {
    loop {
        let (id, scenario, telemetry) = {
            let mut st = inner.lock();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.draining {
                    return;
                }
                st = inner.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };

        {
            let mut st = inner.lock();
            st.current = Some(id);
            inner.set_job(&mut st, id, JobState::Running, String::new());
        }

        // The per-job toggle only ever narrows the daemon config: a job with
        // telemetry off runs under the same supervision policy, minus the log.
        let mut supervisor_cfg = inner.cfg.supervisor.clone();
        if !telemetry {
            supervisor_cfg.telemetry = None;
        }
        let result = run_supervised(&scenario, &inner.cfg.store, &supervisor_cfg, |event| {
            eprintln!("job {id}: {}", event.describe())
        });

        let mut st = inner.lock();
        st.current = None;
        match result {
            Ok(outcome) => {
                let summary = format!(
                    "{} cells: {} warm, {} healed, {} simulated, {} restarts",
                    outcome.cells,
                    outcome.warm_cells,
                    outcome.hits,
                    outcome.simulated,
                    outcome.restarts
                );
                if outcome.is_complete() {
                    inner.set_job(&mut st, id, JobState::Done, summary);
                } else {
                    inner.set_job(
                        &mut st,
                        id,
                        JobState::Degraded,
                        format!(
                            "{summary}; {} failed cells, failed shards {:?}",
                            outcome.failed_cells.len(),
                            outcome.failed_shards
                        ),
                    );
                }
            }
            Err(e) => inner.set_job(&mut st, id, JobState::Failed, e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use std::time::{Duration, Instant};

    fn test_service(dir: &Path) -> SweepService {
        let store = dir.join("results.store");
        let mut supervisor =
            SupervisorConfig::new(2, std::env::current_exe().unwrap(), dir.join("status"));
        // The test binary is not a worker front end; jobs submitted here are
        // expected to fail fast, which is all these tests need.
        supervisor.shard_deadline = Duration::from_secs(5);
        SweepService::start(ServeConfig { store, supervisor })
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fw-serve-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn bad_specs_are_rejected_before_queueing() {
        let dir = temp_dir("badspec");
        let service = test_service(&dir);
        let err = service.submit("preset=bogus").unwrap_err();
        assert!(err.contains("unknown scenario preset"), "{err}");
        assert!(service.jobs().is_empty());
        service.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_toggle_is_split_from_the_spec() {
        assert_eq!(
            split_telemetry_toggle("preset=smoke;telemetry=on").unwrap(),
            ("preset=smoke".to_owned(), Some(true))
        );
        assert_eq!(
            split_telemetry_toggle("telemetry=off;preset=smoke").unwrap(),
            ("preset=smoke".to_owned(), Some(false))
        );
        assert_eq!(
            split_telemetry_toggle("preset=smoke").unwrap(),
            ("preset=smoke".to_owned(), None)
        );
        let err = split_telemetry_toggle("preset=smoke;telemetry=maybe").unwrap_err();
        assert!(err.contains("'on' or 'off'"), "{err}");
    }

    #[test]
    fn telemetry_on_without_a_daemon_log_is_rejected() {
        let dir = temp_dir("tel-on");
        let service = test_service(&dir);
        let err = service.submit("preset=smoke;telemetry=on").unwrap_err();
        assert!(err.contains("without --telemetry"), "{err}");
        // telemetry=off is always acceptable; it queues normally.
        let sub = service.submit("preset=smoke;telemetry=off").unwrap();
        assert!(matches!(sub, Submitted::Queued { .. }), "{sub:?}");
        assert!(!service.jobs()[0].telemetry);
        service.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shutdown_cancels_queued_jobs() {
        let dir = temp_dir("cancel");
        let service = test_service(&dir);
        // Submit two jobs; the second is necessarily queued behind the first.
        let a = service
            .submit("preset=smoke;warmup=100;measured=200")
            .unwrap();
        assert!(matches!(a, Submitted::Queued { id: 1, .. }), "{a:?}");
        let b = service
            .submit("preset=smoke;warmup=100;measured=300")
            .unwrap();
        assert!(matches!(b, Submitted::Queued { .. }), "{b:?}");
        let inner = Arc::clone(&service.inner);
        service.shutdown();
        // After the drain nothing may still be queued or running; every job
        // ended terminal (the in-flight one may have run to a failure with
        // this test binary as a bogus worker exe, the rest were cancelled).
        let st = inner.lock();
        assert!(st.queue.is_empty());
        assert_eq!(st.current, None);
        assert_eq!(st.jobs.len(), 2);
        for job in &st.jobs {
            assert!(
                !matches!(job.state, JobState::Queued | JobState::Running),
                "job left non-terminal: {job:?}"
            );
        }
        drop(st);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn status_json_is_well_formed() {
        let dir = temp_dir("status");
        let service = test_service(&dir);
        let status = service.status_json();
        assert!(
            status.starts_with("{\"schema\":\"flywheel-serve/1\""),
            "{status}"
        );
        assert!(status.contains("\"queue_depth\":0"), "{status}");
        assert!(status.contains("\"current\":null"), "{status}");
        let health = service.healthz_json();
        assert!(health.starts_with("{\"ok\":true"), "{health}");
        service.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn draining_service_rejects_new_work() {
        let dir = temp_dir("drain");
        let service = test_service(&dir);
        // Reach in via shutdown on a clone-less handle: mark draining first
        // by submitting nothing, shutting down, then checking the error path
        // requires a second handle — instead drive the state directly.
        service.inner.lock().draining = true;
        let err = service.submit("preset=smoke").unwrap_err();
        assert!(err.contains("draining"), "{err}");
        service.inner.lock().draining = false;
        service.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn executor_runs_and_finishes_queued_jobs() {
        let dir = temp_dir("exec");
        let service = test_service(&dir);
        // current_exe (the test binary) ignores __shard-worker argv and
        // exits nonzero/never writes state=done, so the job must end in a
        // non-queued, non-running terminal state rather than hang.
        service
            .submit("name=t;benches=micro;machines=flywheel;nodes=130;clocks=0:0;baseline-clock=0:0;windows=64:64;ec=128;mem=100;seeds=1;warmup=50;measured=100")
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let jobs = service.jobs();
            let job = jobs.first().expect("job recorded");
            match job.state {
                JobState::Queued | JobState::Running => {
                    assert!(Instant::now() < deadline, "job stuck in {:?}", job.state);
                    std::thread::sleep(Duration::from_millis(50));
                }
                terminal => {
                    assert!(
                        matches!(terminal, JobState::Degraded | JobState::Failed),
                        "bogus worker exe cannot complete cleanly, got {terminal:?}"
                    );
                    break;
                }
            }
        }
        service.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
