//! A minimal HTTP/1.1 server-side codec over std [`TcpStream`]s.
//!
//! This is intentionally not a web framework: `flywheel-serve` talks to a
//! couple of local clients (curl, CI scripts, the integration tests), every
//! response is small JSON, and every connection is `Connection: close`. The
//! codec therefore only handles the subset it needs — a request line,
//! `Content-Length`-framed bodies, and nothing else (no chunked encoding, no
//! keep-alive, no continuation headers). Requests that stray outside that
//! subset fail with a descriptive error the caller turns into a 400.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Largest accepted request body (scenario specs are one line; 1 MiB is
/// orders of magnitude of headroom).
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target (`/status`, `/sweep`, ...), as sent.
    pub path: String,
    /// Decoded request body; empty when the request had none.
    pub body: String,
}

/// Why a request could not be read off the wire.
///
/// The distinction matters to the caller's status line: a *slow or stalled*
/// client is told `408 Request Timeout` (it sent nothing wrong — yet), while
/// a *malformed* request earns `400 Bad Request`. Folding both into one
/// generic error, as this codec once did, mislabels flaky networks as client
/// bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The read timeout elapsed before a full request arrived.
    Timeout,
    /// The request was malformed, over limits, or the connection broke.
    Bad(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Timeout => write!(f, "timed out waiting for the request"),
            RequestError::Bad(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RequestError {}

/// Maps one socket-read failure: timeouts surface as [`RequestError::Timeout`]
/// (`WouldBlock` on Linux, `TimedOut` on other platforms), everything else as
/// a malformed-request error.
fn read_error(what: &str, e: std::io::Error) -> RequestError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RequestError::Timeout,
        _ => RequestError::Bad(format!("{what}: {e}")),
    }
}

/// Byte offset just past the `\r\n\r\n` separating head from body, if the
/// buffer contains it yet.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Reads and parses one request from `stream` with the production 5 s read
/// timeout. See [`read_request_with_timeout`].
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    read_request_with_timeout(stream, Duration::from_secs(5))
}

/// Reads and parses one request from `stream`.
///
/// Blocks (with the given read timeout, so a wedged client cannot wedge the
/// accept loop) until the head and `Content-Length` bytes of body have
/// arrived. A client that stalls past the timeout gets
/// [`RequestError::Timeout`], distinct from every malformed-request error.
pub fn read_request_with_timeout(
    stream: &mut TcpStream,
    timeout: Duration,
) -> Result<Request, RequestError> {
    let bad = |e: &str| RequestError::Bad(e.to_owned());
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| RequestError::Bad(format!("setting read timeout: {e}")))?;

    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_len = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }
        let n = stream.read(&mut chunk).map_err(|e| read_error("read", e))?;
        if n == 0 {
            return Err(bad("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head =
        std::str::from_utf8(&buf[..head_len - 4]).map_err(|_| bad("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| bad("empty request line"))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| bad("request line has no path"))?
        .to_owned();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    RequestError::Bad(format!("bad Content-Length '{}'", value.trim()))
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("request body too large"));
    }

    let mut body = buf[head_len..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| read_error("read body", e))?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| bad("request body is not UTF-8"))?;

    Ok(Request { method, path, body })
}

/// Writes a complete `Connection: close` JSON response.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            // Half-close so the server sees EOF after the payload, then wait
            // for it to finish parsing before tearing the socket down.
            s.shutdown(std::net::Shutdown::Write).unwrap();
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        drop(stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_request_with_body() {
        let req = round_trip(
            b"POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\npreset=smoke",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sweep");
        assert_eq!(req.body, "preset=smoke");
    }

    #[test]
    fn parses_bodyless_get() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.body, "");
    }

    #[test]
    fn rejects_bad_content_length() {
        let err = round_trip(b"POST /sweep HTTP/1.1\r\nContent-Length: pony\r\n\r\n").unwrap_err();
        assert!(
            matches!(&err, RequestError::Bad(e) if e.contains("bad Content-Length")),
            "{err}"
        );
    }

    #[test]
    fn rejects_truncated_body() {
        let err =
            round_trip(b"POST /sweep HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").unwrap_err();
        assert!(
            matches!(&err, RequestError::Bad(e) if e.contains("closed mid-body")),
            "{err}"
        );
    }

    /// Drives `read_request_with_timeout` against a client that sends `sent`
    /// and then stalls with the socket held open (no close, no more bytes).
    fn stalled_client(sent: &'static [u8], timeout: Duration) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(sent).unwrap();
            s.flush().unwrap();
            // Stall: keep the connection open and silent until the server
            // gives up and closes it (read_to_end returns at that point).
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request_with_timeout(&mut stream, timeout);
        drop(stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn stalled_head_is_a_timeout_not_a_bad_request() {
        // A client that dribbles half a request head and goes quiet has not
        // sent anything malformed; it must get Timeout (→ 408), never the
        // generic Bad (→ 400) this used to collapse into.
        let err = stalled_client(
            b"POST /sweep HTTP/1.1\r\nContent-Le",
            Duration::from_millis(80),
        )
        .unwrap_err();
        assert_eq!(err, RequestError::Timeout, "{err}");
    }

    #[test]
    fn stalled_body_is_a_timeout_not_a_bad_request() {
        let err = stalled_client(
            b"POST /sweep HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
            Duration::from_millis(80),
        )
        .unwrap_err();
        assert_eq!(err, RequestError::Timeout, "{err}");
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(
            json_escape("a\"b\\c\nd\te\u{1}"),
            "a\\\"b\\\\c\\nd\\te\\u0001"
        );
        assert_eq!(json_escape("plain"), "plain");
    }
}
