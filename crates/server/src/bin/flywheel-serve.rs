//! `flywheel-serve` — a crash-tolerant sweep daemon.
//!
//! Serves a small JSON-over-HTTP surface on a local TCP port:
//!
//! * `POST /sweep` — body is a scenario spec (`preset=smoke` or the full
//!   `key=value;...` grammar of `flywheel_bench::spec`). Fully warm scenarios
//!   answer straight from the store (`200`, `"warm":true`); anything else is
//!   queued as a job (`202`) and run as a supervised multi-process sharded
//!   sweep. The body may also carry `telemetry=on|off` to toggle per-job
//!   kernel telemetry when the daemon was started with `--telemetry`.
//! * `GET /status` — queue depth, job table and, while a sweep is running,
//!   the live per-shard worker heartbeats.
//! * `GET /healthz` — cheap liveness probe.
//! * `POST /shutdown` — same as SIGTERM, for clients that cannot signal.
//!
//! SIGTERM/SIGINT (or `POST /shutdown`) triggers a *drain*: queued jobs are
//! cancelled, the in-flight sweep and its worker processes run to completion,
//! the store is flushed by the supervisor's merge, and the daemon exits 0.
//!
//! The daemon is its own worker executable: re-invoked with the hidden
//! `__shard-worker` argv it becomes a shard worker, which is why `main`
//! dispatches through [`supervisor::maybe_run_shard_worker`] first.

use flywheel_bench::fault::FaultPlan;
use flywheel_bench::supervisor::{self, SupervisorConfig};
use flywheel_server::http::{json_escape, read_request, respond, RequestError};
use flywheel_server::service::{ServeConfig, Submitted, SweepService};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler (and `POST /shutdown`); the accept loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn request_shutdown(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

// The one `unsafe` surface of the server crate: the POSIX signal(2) binding
// used to install the drain flag (no external crates in this environment).
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn usage() -> ! {
    eprintln!(
        "usage: flywheel-serve [options]\n\
         \n\
         options:\n\
           --addr HOST:PORT        listen address (default 127.0.0.1:7877; port 0 picks one)\n\
           --store PATH            result store swept into (default results.store)\n\
           --shards N              worker processes per sweep (default: cores, capped at 8)\n\
           --status-dir DIR        worker status files (default <store>.status)\n\
           --max-restarts N        restarts per shard before degrading (default 2)\n\
           --backoff-ms MS         base restart backoff (default 100)\n\
           --stall-timeout-ms MS   heartbeat stall kill threshold (default 10000)\n\
           --deadline-ms MS        per-incarnation wall budget (default 120000)\n\
           --faults SPEC           fault-injection plan forwarded to workers\n\
           --telemetry PATH        arm kernel telemetry per sweep; workers drain into\n\
                                   per-shard event logs merged at PATH (jobs can opt\n\
                                   out with telemetry=off in the POST /sweep body)\n\
         \n\
         endpoints: POST /sweep, GET /status, GET /healthz, POST /shutdown"
    );
    exit(1);
}

fn main() {
    supervisor::maybe_run_shard_worker();
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut addr = "127.0.0.1:7877".to_owned();
    let mut store = PathBuf::from("results.store");
    let mut shards = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
    let mut status_dir: Option<PathBuf> = None;
    let mut max_restarts: Option<u32> = None;
    let mut backoff_ms: Option<u64> = None;
    let mut stall_timeout_ms: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut faults: Option<FaultPlan> = None;
    let mut telemetry: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("flywheel-serve: {flag} needs a value");
                usage();
            })
        };
        let num = |flag: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("flywheel-serve: {flag} wants a number, got '{v}'");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--store" => store = PathBuf::from(value("--store")),
            "--shards" => shards = (num("--shards", value("--shards")) as usize).max(1),
            "--status-dir" => status_dir = Some(PathBuf::from(value("--status-dir"))),
            "--max-restarts" => {
                max_restarts = Some(num("--max-restarts", value("--max-restarts")) as u32)
            }
            "--backoff-ms" => backoff_ms = Some(num("--backoff-ms", value("--backoff-ms"))),
            "--stall-timeout-ms" => {
                stall_timeout_ms = Some(num("--stall-timeout-ms", value("--stall-timeout-ms")))
            }
            "--deadline-ms" => deadline_ms = Some(num("--deadline-ms", value("--deadline-ms"))),
            "--faults" => {
                let spec = value("--faults");
                faults = Some(FaultPlan::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("flywheel-serve: bad --faults: {e}");
                    usage();
                }))
            }
            "--telemetry" => telemetry = Some(PathBuf::from(value("--telemetry"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("flywheel-serve: unknown option '{other}'");
                usage();
            }
        }
    }

    let worker_exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("flywheel-serve: cannot resolve own executable: {e}");
        exit(1);
    });
    let status_dir =
        status_dir.unwrap_or_else(|| PathBuf::from(format!("{}.status", store.display())));
    let mut cfg = SupervisorConfig::new(shards, worker_exe, status_dir);
    if let Some(n) = max_restarts {
        cfg.max_restarts = n;
    }
    if let Some(ms) = backoff_ms {
        cfg.backoff = Duration::from_millis(ms);
    }
    if let Some(ms) = stall_timeout_ms {
        cfg.stall_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = deadline_ms {
        cfg.shard_deadline = Duration::from_millis(ms);
    }
    cfg.faults = faults;
    cfg.telemetry = telemetry;

    unsafe {
        signal(SIGTERM, request_shutdown);
        signal(SIGINT, request_shutdown);
    }

    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("flywheel-serve: cannot bind {addr}: {e}");
        exit(1);
    });
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("flywheel-serve: cannot set nonblocking accept: {e}");
        exit(1);
    }
    let local = listener
        .local_addr()
        .map_or(addr.clone(), |a| a.to_string());
    // The tests parse this line to discover an ephemeral --addr :0 port.
    println!("flywheel-serve listening on http://{local}");

    let service = SweepService::start(ServeConfig {
        store,
        supervisor: cfg,
    });

    while !SHUTDOWN.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => handle(&mut stream, &service),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("flywheel-serve: accept: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }

    eprintln!("flywheel-serve: shutdown requested; draining in-flight sweep");
    service.shutdown();
    eprintln!("flywheel-serve: drained; exiting");
}

/// Serves one connection (one request — every response is
/// `Connection: close`).
fn handle(stream: &mut TcpStream, service: &SweepService) {
    // Accepted sockets do not inherit the listener's O_NONBLOCK on Linux,
    // but make the contract explicit rather than rely on it.
    let _ = stream.set_nonblocking(false);
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            // A stalled client is not a malformed one: timeouts answer 408,
            // only actually-bad requests answer 400.
            let (status, reason) = match &e {
                RequestError::Timeout => (408, "Request Timeout"),
                RequestError::Bad(_) => (400, "Bad Request"),
            };
            let body = format!("{{\"error\":\"{}\"}}", json_escape(&e.to_string()));
            let _ = respond(stream, status, reason, &body);
            return;
        }
    };
    let (status, reason, body) = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, "OK", service.healthz_json()),
        ("GET", "/status") => (200, "OK", service.status_json()),
        ("POST", "/sweep") => match service.submit(request.body.trim()) {
            Ok(Submitted::Warm { cells }) => (
                200,
                "OK",
                format!("{{\"warm\":true,\"cells\":{cells},\"queued\":false}}"),
            ),
            Ok(Submitted::Queued {
                id,
                cells,
                position,
            }) => (
                202,
                "Accepted",
                format!(
                    "{{\"warm\":false,\"queued\":true,\"job\":{id},\"cells\":{cells},\"position\":{position}}}"
                ),
            ),
            Err(e) => (
                400,
                "Bad Request",
                format!("{{\"error\":\"{}\"}}", json_escape(&e)),
            ),
        },
        ("POST", "/shutdown") => {
            SHUTDOWN.store(true, Ordering::SeqCst);
            (200, "OK", "{\"draining\":true}".to_owned())
        }
        (_, path) => (
            404,
            "Not Found",
            format!("{{\"error\":\"no such endpoint: {}\"}}", json_escape(path)),
        ),
    };
    if let Err(e) = respond(stream, status, reason, &body) {
        eprintln!("flywheel-serve: writing response: {e}");
    }
}
