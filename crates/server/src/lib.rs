//! The flywheel sweep *service* layer: a long-running daemon
//! (`flywheel-serve`) that accepts scenario specs over HTTP, runs them as
//! supervised multi-process sharded sweeps
//! ([`flywheel_bench::supervisor::run_supervised`]) into one shared result
//! store, and reports queue/worker/heartbeat state.
//!
//! The crate is split along the obvious seam:
//!
//! * [`http`] — a deliberately tiny HTTP/1.1 request/response codec over std
//!   [`std::net::TcpStream`]s. No framework, no async: the daemon serves a
//!   handful of local curl/CI clients, so blocking reads with a nonblocking
//!   accept loop is the whole story.
//! * [`service`] — the sweep queue. `POST /sweep` bodies become jobs; one
//!   executor thread drains them serially (each job is itself N worker
//!   processes, so the parallelism lives a layer down); a fully warm scenario
//!   is answered straight from the store without touching the queue.
//!
//! The library forbids `unsafe` like the rest of the workspace; the one
//! exception lives in the `flywheel-serve` *binary*, which installs
//! SIGTERM/SIGINT handlers through a single hand-declared `signal(2)`
//! binding (no external crates are available in this build environment).

#![warn(missing_docs)]
#![forbid(unsafe_code)] // the signal(2) binding lives in the binary, not here

pub mod http;
pub mod service;
