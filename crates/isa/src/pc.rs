//! Program-counter newtype.

use std::fmt;
use std::ops::Add;

/// Size of an encoded instruction in bytes; PCs advance by this amount.
pub(crate) const INST_BYTES: u64 = 4;

/// A program counter (instruction address).
///
/// PCs are byte addresses; instructions are 4 bytes, so consecutive instructions
/// differ by 4. The fetch unit uses PC alignment to decide how many instructions fit
/// in one fetch group, and the Execution Cache tags traces by their starting PC.
///
/// ```
/// use flywheel_isa::Pc;
/// let pc = Pc::new(0x1000);
/// assert_eq!(pc.next(), Pc::new(0x1004));
/// assert_eq!(pc.word_index(), 0x400);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u64);

impl Pc {
    /// Creates a PC from a byte address.
    pub fn new(addr: u64) -> Self {
        Pc(addr)
    }

    /// The byte address.
    pub fn addr(&self) -> u64 {
        self.0
    }

    /// The address of the next sequential instruction.
    pub fn next(&self) -> Pc {
        Pc(self.0 + INST_BYTES)
    }

    /// The instruction index (address divided by the instruction size).
    pub fn word_index(&self) -> u64 {
        self.0 / INST_BYTES
    }

    /// Offset, in instructions, within an aligned fetch group of `group_size`
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero.
    pub fn fetch_group_offset(&self, group_size: usize) -> usize {
        assert!(group_size > 0, "fetch group size must be non-zero");
        (self.word_index() as usize) % group_size
    }
}

impl Add<u64> for Pc {
    type Output = Pc;

    /// Adds a number of *instructions* (not bytes) to the PC.
    fn add(self, rhs: u64) -> Pc {
        Pc(self.0 + rhs * INST_BYTES)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_advances_by_instruction_size() {
        assert_eq!(Pc::new(0).next(), Pc::new(4));
        assert_eq!(Pc::new(100).next().next(), Pc::new(108));
    }

    #[test]
    fn add_counts_instructions() {
        assert_eq!(Pc::new(0x40) + 3, Pc::new(0x4c));
    }

    #[test]
    fn fetch_group_offset_wraps() {
        assert_eq!(Pc::new(0).fetch_group_offset(4), 0);
        assert_eq!(Pc::new(4).fetch_group_offset(4), 1);
        assert_eq!(Pc::new(12).fetch_group_offset(4), 3);
        assert_eq!(Pc::new(16).fetch_group_offset(4), 0);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Pc::new(0x1234).to_string(), "0x00001234");
    }
}
