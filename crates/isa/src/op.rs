//! Operation classes and functional-unit kinds.

use std::fmt;

/// The operation class of an instruction.
///
/// The simulator schedules instructions purely by class: a class determines which
/// [`FuKind`] executes the instruction and its nominal execution latency. Control
/// transfer details (conditional vs. unconditional, call/return) are captured by
/// [`crate::CtrlKind`] on the static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (add, logic, shifts, compares).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Floating-point add/subtract/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root.
    FpDiv,
    /// Control transfer (conditional branch, jump, call, return).
    Ctrl,
    /// No-operation (used as padding by the workload generator).
    Nop,
}

impl OpClass {
    /// The functional-unit kind that executes this class.
    pub fn fu_kind(&self) -> FuKind {
        match self {
            OpClass::IntAlu | OpClass::Ctrl | OpClass::Nop => FuKind::IntAlu,
            OpClass::IntMul | OpClass::IntDiv => FuKind::IntMulDiv,
            OpClass::Load | OpClass::Store => FuKind::MemPort,
            OpClass::FpAdd => FuKind::FpAdd,
            OpClass::FpMul | OpClass::FpDiv => FuKind::FpMulDiv,
        }
    }

    /// The nominal execution latency of this class, in execution-core cycles.
    ///
    /// Loads report their cache-hit latency exclusive of the data-cache access, which
    /// the memory hierarchy adds on top; the value here is the address-generation
    /// cost.
    pub fn base_latency(&self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::Ctrl | OpClass::Nop => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 12,
            OpClass::Load | OpClass::Store => 1,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
        }
    }

    /// Whether the class accesses data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the class is a control transfer.
    pub fn is_ctrl(&self) -> bool {
        matches!(self, OpClass::Ctrl)
    }

    /// Whether the class uses the floating-point register file.
    pub fn is_fp(&self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }

    /// All operation classes, in a stable order.
    pub fn all() -> &'static [OpClass] {
        &[
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::IntDiv,
            OpClass::Load,
            OpClass::Store,
            OpClass::FpAdd,
            OpClass::FpMul,
            OpClass::FpDiv,
            OpClass::Ctrl,
            OpClass::Nop,
        ]
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "alu",
            OpClass::IntMul => "mul",
            OpClass::IntDiv => "div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::Ctrl => "ctrl",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// A kind of functional unit in the execution core.
///
/// The paper's configuration (Table 2) provides 4 integer ALUs, 2 integer
/// multiply/divide units, 2 memory ports, 2 FP adders and 1 FP multiply/divide unit;
/// those counts live in the simulator configuration, keyed by this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Integer ALU (also executes branches and nops).
    IntAlu,
    /// Integer multiplier / divider.
    IntMulDiv,
    /// Load/store port.
    MemPort,
    /// Floating-point adder.
    FpAdd,
    /// Floating-point multiplier / divider.
    FpMulDiv,
}

impl FuKind {
    /// All functional-unit kinds, in a stable order.
    pub fn all() -> &'static [FuKind] {
        &[
            FuKind::IntAlu,
            FuKind::IntMulDiv,
            FuKind::MemPort,
            FuKind::FpAdd,
            FuKind::FpMulDiv,
        ]
    }

    /// Index of this kind in [`FuKind::all`], usable as an array index.
    pub fn index(&self) -> usize {
        match self {
            FuKind::IntAlu => 0,
            FuKind::IntMulDiv => 1,
            FuKind::MemPort => 2,
            FuKind::FpAdd => 3,
            FuKind::FpMulDiv => 4,
        }
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::IntAlu => "int-alu",
            FuKind::IntMulDiv => "int-muldiv",
            FuKind::MemPort => "mem-port",
            FuKind::FpAdd => "fp-add",
            FuKind::FpMulDiv => "fp-muldiv",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_maps_to_a_unit() {
        for op in OpClass::all() {
            // index() must be a valid position into FuKind::all()
            let fu = op.fu_kind();
            assert_eq!(FuKind::all()[fu.index()], fu);
        }
    }

    #[test]
    fn latencies_are_positive() {
        for op in OpClass::all() {
            assert!(op.base_latency() >= 1, "{op} has zero latency");
        }
    }

    #[test]
    fn memory_classification() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::Ctrl.is_ctrl());
        assert!(OpClass::FpMul.is_fp());
        assert!(!OpClass::Load.is_fp());
    }

    #[test]
    fn fu_index_is_dense_and_unique() {
        let mut seen = vec![false; FuKind::all().len()];
        for fu in FuKind::all() {
            assert!(!seen[fu.index()]);
            seen[fu.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn long_latency_ops_are_longer_than_alu() {
        assert!(OpClass::IntDiv.base_latency() > OpClass::IntAlu.base_latency());
        assert!(OpClass::FpDiv.base_latency() > OpClass::FpAdd.base_latency());
    }
}
