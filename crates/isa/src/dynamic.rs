//! Dynamic (executed) instructions — the unit consumed by the simulators.

use crate::{Pc, StaticInst};
use std::fmt;

/// A dynamic memory access performed by a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
}

impl MemAccess {
    /// Creates an access of `size` bytes at `addr`.
    pub fn new(addr: u64, size: u8) -> Self {
        MemAccess { addr, size }
    }

    /// The cache-line address for a line of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn line_addr(&self, line_bytes: u64) -> u64 {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        self.addr & !(line_bytes - 1)
    }
}

/// One executed instruction of a dynamic trace.
///
/// The workload generators in `flywheel-workloads` "execute" a synthetic program and
/// emit a stream of `DynInst`. The simulators are trace-driven: they fetch, rename,
/// schedule and retire these records, using
///
/// * [`DynInst::stat`] for operands and operation class,
/// * [`DynInst::taken`] / [`DynInst::next_pc`] as the oracle branch outcome that the
///   modelled branch predictor is compared against, and
/// * [`DynInst::mem`] as the effective address presented to the cache hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct DynInst {
    /// Sequence number in the dynamic trace (0-based).
    pub seq: u64,
    /// PC of this instruction.
    pub pc: Pc,
    /// The static instruction executed.
    pub stat: StaticInst,
    /// For control transfers, whether the transfer was taken.
    pub taken: bool,
    /// PC of the next dynamically executed instruction.
    pub next_pc: Pc,
    /// Memory access, for loads and stores.
    pub mem: Option<MemAccess>,
}

impl DynInst {
    /// Whether this instruction redirects the fetch stream (a taken control
    /// transfer).
    pub fn redirects_fetch(&self) -> bool {
        self.stat.op().is_ctrl() && self.taken
    }

    /// Whether the dynamic next PC differs from the fall-through PC.
    pub fn is_taken_branch(&self) -> bool {
        self.next_pc != self.pc.next()
    }
}

impl fmt::Display for DynInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {} {}", self.seq, self.pc, self.stat)?;
        if let Some(m) = self.mem {
            write!(f, " @0x{:x}", m.addr)?;
        }
        if self.stat.op().is_ctrl() {
            write!(f, " -> {}", self.next_pc)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArchReg;

    fn branch_inst(taken: bool) -> DynInst {
        let pc = Pc::new(0x1000);
        DynInst {
            seq: 0,
            pc,
            stat: StaticInst::cond_branch(ArchReg::int(1), None),
            taken,
            next_pc: if taken { Pc::new(0x2000) } else { pc.next() },
            mem: None,
        }
    }

    #[test]
    fn taken_branch_redirects_fetch() {
        assert!(branch_inst(true).redirects_fetch());
        assert!(!branch_inst(false).redirects_fetch());
        assert!(branch_inst(true).is_taken_branch());
        assert!(!branch_inst(false).is_taken_branch());
    }

    #[test]
    fn line_addr_masks_offset() {
        let a = MemAccess::new(0x1234, 4);
        assert_eq!(a.line_addr(64), 0x1200);
        assert_eq!(a.line_addr(32), 0x1220);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_line_panics() {
        let _ = MemAccess::new(0, 4).line_addr(48);
    }

    #[test]
    fn display_includes_address_and_target() {
        let mut d = branch_inst(true);
        d.mem = Some(MemAccess::new(0xdead, 8));
        let s = d.to_string();
        assert!(s.contains("0xdead"));
        assert!(s.contains("0x00002000"));
    }
}
