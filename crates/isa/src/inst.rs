//! Static instructions.

use crate::{ArchReg, OpClass};
use std::fmt;

/// The kind of a control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtrlKind {
    /// Conditional branch: taken or not-taken, direction predicted by the branch
    /// predictor.
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Direct call (pushes a return address onto the return-address stack).
    Call,
    /// Return (pops the return-address stack).
    Return,
    /// Indirect jump through a register (target predicted by the BTB).
    IndirectJump,
}

impl CtrlKind {
    /// Whether the transfer is conditional (its direction must be predicted).
    pub fn is_conditional(&self) -> bool {
        matches!(self, CtrlKind::CondBranch)
    }

    /// Whether the target comes from a register and therefore needs the BTB even when
    /// the direction is known.
    pub fn is_indirect(&self) -> bool {
        matches!(self, CtrlKind::IndirectJump | CtrlKind::Return)
    }
}

/// One instruction of a static program.
///
/// A static instruction carries everything the front-end needs: operation class,
/// destination and up to two source architected registers, and (for control
/// transfers) the control kind. Memory addresses and branch outcomes are dynamic
/// properties and live on [`crate::DynInst`].
///
/// ```
/// use flywheel_isa::{ArchReg, OpClass, StaticInst};
/// let add = StaticInst::alu(ArchReg::int(3), ArchReg::int(1), Some(ArchReg::int(2)));
/// assert_eq!(add.op(), OpClass::IntAlu);
/// assert_eq!(add.dst(), Some(ArchReg::int(3)));
/// assert_eq!(add.srcs().count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticInst {
    op: OpClass,
    dst: Option<ArchReg>,
    src1: Option<ArchReg>,
    src2: Option<ArchReg>,
    ctrl: Option<CtrlKind>,
}

impl StaticInst {
    /// Creates an instruction from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `op` is [`OpClass::Ctrl`] but `ctrl` is `None`, or vice versa.
    pub fn new(
        op: OpClass,
        dst: Option<ArchReg>,
        src1: Option<ArchReg>,
        src2: Option<ArchReg>,
        ctrl: Option<CtrlKind>,
    ) -> Self {
        assert_eq!(
            op.is_ctrl(),
            ctrl.is_some(),
            "control kind must be present exactly for control instructions"
        );
        StaticInst {
            op,
            dst: dst.filter(|r| !r.is_zero()),
            src1: src1.filter(|r| !r.is_zero()),
            src2: src2.filter(|r| !r.is_zero()),
            ctrl,
        }
    }

    /// An integer ALU instruction `dst <- src1 op src2`.
    pub fn alu(dst: ArchReg, src1: ArchReg, src2: Option<ArchReg>) -> Self {
        StaticInst::new(OpClass::IntAlu, Some(dst), Some(src1), src2, None)
    }

    /// An instruction of an arbitrary computational class `dst <- src1 op src2`.
    pub fn compute(op: OpClass, dst: ArchReg, src1: ArchReg, src2: Option<ArchReg>) -> Self {
        assert!(!op.is_ctrl() && !op.is_mem(), "use dedicated constructors");
        StaticInst::new(op, Some(dst), Some(src1), src2, None)
    }

    /// A load `dst <- mem[base]`.
    pub fn load(dst: ArchReg, base: ArchReg) -> Self {
        StaticInst::new(OpClass::Load, Some(dst), Some(base), None, None)
    }

    /// A store `mem[base] <- value`.
    pub fn store(value: ArchReg, base: ArchReg) -> Self {
        StaticInst::new(OpClass::Store, None, Some(base), Some(value), None)
    }

    /// A conditional branch testing `src1` (and optionally `src2`).
    pub fn cond_branch(src1: ArchReg, src2: Option<ArchReg>) -> Self {
        StaticInst::new(
            OpClass::Ctrl,
            None,
            Some(src1),
            src2,
            Some(CtrlKind::CondBranch),
        )
    }

    /// An unconditional direct jump.
    pub fn jump() -> Self {
        StaticInst::new(OpClass::Ctrl, None, None, None, Some(CtrlKind::Jump))
    }

    /// A direct call.
    pub fn call() -> Self {
        StaticInst::new(OpClass::Ctrl, None, None, None, Some(CtrlKind::Call))
    }

    /// A return.
    pub fn ret() -> Self {
        StaticInst::new(OpClass::Ctrl, None, None, None, Some(CtrlKind::Return))
    }

    /// An indirect jump through `src1`.
    pub fn indirect_jump(src1: ArchReg) -> Self {
        StaticInst::new(
            OpClass::Ctrl,
            None,
            Some(src1),
            None,
            Some(CtrlKind::IndirectJump),
        )
    }

    /// A no-operation.
    pub fn nop() -> Self {
        StaticInst::new(OpClass::Nop, None, None, None, None)
    }

    /// The operation class.
    pub fn op(&self) -> OpClass {
        self.op
    }

    /// The destination architected register, if any.
    ///
    /// Writes to the hard-wired zero register are dropped at construction, so a
    /// returned register is always a real rename target.
    pub fn dst(&self) -> Option<ArchReg> {
        self.dst
    }

    /// The first source register, if any.
    pub fn src1(&self) -> Option<ArchReg> {
        self.src1
    }

    /// The second source register, if any.
    pub fn src2(&self) -> Option<ArchReg> {
        self.src2
    }

    /// Iterates over the present source registers.
    pub fn srcs(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.src1.into_iter().chain(self.src2)
    }

    /// The control kind, if this is a control transfer.
    pub fn ctrl(&self) -> Option<CtrlKind> {
        self.ctrl
    }

    /// Whether the instruction is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        self.ctrl.map(|c| c.is_conditional()).unwrap_or(false)
    }
}

impl fmt::Display for StaticInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        if let Some(c) = self.ctrl {
            write!(f, "[{c:?}]")?;
        }
        if let Some(d) = self.dst {
            write!(f, " {d} <-")?;
        }
        for s in self.srcs() {
            write!(f, " {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_operands_are_elided() {
        let i = StaticInst::alu(ArchReg::int(0), ArchReg::int(0), Some(ArchReg::int(2)));
        assert_eq!(i.dst(), None);
        assert_eq!(i.src1(), None);
        assert_eq!(i.src2(), Some(ArchReg::int(2)));
        assert_eq!(i.srcs().count(), 1);
    }

    #[test]
    fn store_has_no_destination() {
        let s = StaticInst::store(ArchReg::int(5), ArchReg::int(6));
        assert_eq!(s.dst(), None);
        assert_eq!(s.srcs().count(), 2);
        assert!(s.op().is_mem());
    }

    #[test]
    fn branch_carries_ctrl_kind() {
        let b = StaticInst::cond_branch(ArchReg::int(1), None);
        assert!(b.is_cond_branch());
        assert_eq!(b.ctrl(), Some(CtrlKind::CondBranch));
        assert!(!StaticInst::jump().is_cond_branch());
        assert!(StaticInst::ret().ctrl().unwrap().is_indirect());
    }

    #[test]
    #[should_panic]
    fn ctrl_class_requires_ctrl_kind() {
        let _ = StaticInst::new(OpClass::Ctrl, None, None, None, None);
    }

    #[test]
    fn display_mentions_operands() {
        let i = StaticInst::alu(ArchReg::int(3), ArchReg::int(1), Some(ArchReg::int(2)));
        let s = i.to_string();
        assert!(s.contains("r3"));
        assert!(s.contains("r1"));
        assert!(s.contains("r2"));
    }
}
