//! Architected registers.

use std::fmt;

/// Number of architected integer registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of architected floating-point registers.
pub const NUM_FP_REGS: usize = 32;
/// Total number of architected registers (integer + floating point).
pub const NUM_ARCH_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// The class of an architected register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// Integer register (`r0`–`r31`); `r0` is hard-wired to zero.
    Int,
    /// Floating-point register (`f0`–`f31`).
    Fp,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architected register: a register class plus an index in `0..32`.
///
/// `ArchReg` is a small `Copy` value used pervasively by the renaming logic. Integer
/// register 0 is the hard-wired zero register: it never creates a data dependence and
/// writes to it are discarded (see [`ArchReg::is_zero`]).
///
/// ```
/// use flywheel_isa::ArchReg;
/// let r = ArchReg::int(4);
/// assert_eq!(r.flat_index(), 4);
/// assert!(!r.is_zero());
/// assert!(ArchReg::int(0).is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Creates an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn int(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_INT_REGS,
            "integer register index {index} out of range"
        );
        ArchReg {
            class: RegClass::Int,
            index,
        }
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn fp(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_FP_REGS,
            "floating-point register index {index} out of range"
        );
        ArchReg {
            class: RegClass::Fp,
            index,
        }
    }

    /// Reconstructs a register from its flat index (inverse of [`ArchReg::flat_index`]).
    ///
    /// # Panics
    ///
    /// Panics if `flat >= NUM_ARCH_REGS`.
    pub fn from_flat_index(flat: usize) -> Self {
        assert!(
            flat < NUM_ARCH_REGS,
            "flat register index {flat} out of range"
        );
        if flat < NUM_INT_REGS {
            ArchReg::int(flat as u8)
        } else {
            ArchReg::fp((flat - NUM_INT_REGS) as u8)
        }
    }

    /// The register class.
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// The index within the class, in `0..32`.
    pub fn index(&self) -> u8 {
        self.index
    }

    /// A flat index in `0..NUM_ARCH_REGS`, with integer registers first.
    ///
    /// This is the index used by rename tables and by the per-architected-register
    /// physical pools of the Flywheel register file.
    pub fn flat_index(&self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_INT_REGS + self.index as usize,
        }
    }

    /// Whether this is the hard-wired integer zero register.
    pub fn is_zero(&self) -> bool {
        self.class == RegClass::Int && self.index == 0
    }

    /// Iterates over every architected register (integers first, then floats).
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS).map(ArchReg::from_flat_index)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_round_trips() {
        for flat in 0..NUM_ARCH_REGS {
            let reg = ArchReg::from_flat_index(flat);
            assert_eq!(reg.flat_index(), flat);
        }
    }

    #[test]
    fn int_and_fp_do_not_alias() {
        assert_ne!(ArchReg::int(3), ArchReg::fp(3));
        assert_ne!(ArchReg::int(3).flat_index(), ArchReg::fp(3).flat_index());
    }

    #[test]
    fn zero_register_detection() {
        assert!(ArchReg::int(0).is_zero());
        assert!(!ArchReg::int(1).is_zero());
        assert!(!ArchReg::fp(0).is_zero());
    }

    #[test]
    fn display_forms() {
        assert_eq!(ArchReg::int(7).to_string(), "r7");
        assert_eq!(ArchReg::fp(12).to_string(), "f12");
    }

    #[test]
    fn all_enumerates_every_register_once() {
        let regs: Vec<ArchReg> = ArchReg::all().collect();
        assert_eq!(regs.len(), NUM_ARCH_REGS);
        let mut seen = std::collections::HashSet::new();
        for r in regs {
            assert!(seen.insert(r));
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_int_register_panics() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic]
    fn out_of_range_flat_index_panics() {
        let _ = ArchReg::from_flat_index(NUM_ARCH_REGS);
    }
}
