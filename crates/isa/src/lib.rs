//! # flywheel-isa
//!
//! Instruction set, register and program representation shared by every other crate
//! in the Flywheel reproduction.
//!
//! The ISA is deliberately small and RISC-like (load/store, two source operands, one
//! destination). The paper's evaluation is ISA-agnostic — it depends only on the
//! dynamic properties of the instruction stream (dependences, branches, memory
//! behaviour) — so a compact ISA keeps the simulator focused on the
//! microarchitecture.
//!
//! The main items are:
//!
//! * [`ArchReg`] — an architected register (32 integer + 32 floating-point).
//! * [`OpClass`] / [`FuKind`] — operation classes and the functional-unit kinds that
//!   execute them.
//! * [`StaticInst`] — one instruction of a static program.
//! * [`Program`], [`BasicBlock`], [`Terminator`] — a static program as a control-flow
//!   graph with a linear address layout.
//! * [`DynInst`] — one element of a dynamic (executed) instruction trace, the unit
//!   consumed by the simulators in `flywheel-uarch` and `flywheel-core`.
//!
//! ```
//! use flywheel_isa::{ArchReg, OpClass, ProgramBuilder, StaticInst, Terminator};
//!
//! let mut b = ProgramBuilder::new();
//! let entry = b.block(
//!     vec![
//!         StaticInst::alu(ArchReg::int(1), ArchReg::int(1), Some(ArchReg::int(2))),
//!         StaticInst::load(ArchReg::int(3), ArchReg::int(1)),
//!     ],
//!     Terminator::Return,
//! );
//! let program = b.build(entry);
//! // The `Return` terminator appends an explicit `ret` instruction to the block.
//! assert_eq!(program.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynamic;
mod inst;
mod op;
mod pc;
mod program;
mod reg;

pub use dynamic::{DynInst, MemAccess};
pub use inst::{CtrlKind, StaticInst};
pub use op::{FuKind, OpClass};
pub use pc::Pc;
pub use program::{BasicBlock, BlockId, Program, ProgramBuilder, Terminator};
pub use reg::{ArchReg, RegClass, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS};
