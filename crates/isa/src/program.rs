//! Static programs as control-flow graphs with a linear address layout.

use crate::pc::INST_BYTES;
use crate::{Pc, StaticInst};
use std::fmt;

/// Identifier of a basic block inside a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// How control leaves a basic block.
///
/// The terminator is a *static* description; which successor is actually taken on a
/// given dynamic execution is decided by the workload generator's behavioural model
/// (loop trip counts, branch biases) and is recorded on the dynamic trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Fall through to the next block in layout order.
    FallThrough(BlockId),
    /// Conditional branch: either to `taken` or fall through to `not_taken`.
    CondBranch {
        /// Successor when the branch is taken.
        taken: BlockId,
        /// Successor when the branch falls through.
        not_taken: BlockId,
    },
    /// Unconditional direct jump.
    Jump(BlockId),
    /// Direct call to `callee`; on return, execution continues at `return_to`.
    Call {
        /// Entry block of the called function.
        callee: BlockId,
        /// Block to resume at after the callee returns.
        return_to: BlockId,
    },
    /// Return to the caller (target resolved dynamically through the call stack).
    Return,
    /// Indirect jump to one of several possible targets.
    Indirect(Vec<BlockId>),
}

impl Terminator {
    /// All statically known successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::FallThrough(t) | Terminator::Jump(t) => vec![*t],
            Terminator::CondBranch { taken, not_taken } => vec![*taken, *not_taken],
            Terminator::Call { callee, return_to } => vec![*callee, *return_to],
            Terminator::Return => vec![],
            Terminator::Indirect(targets) => targets.clone(),
        }
    }
}

/// A basic block: a straight-line sequence of instructions plus a terminator.
///
/// The last instruction of the block is the control transfer implementing the
/// terminator (added automatically by [`ProgramBuilder`]) unless the terminator is a
/// fall-through, in which case the block has no explicit control instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    id: BlockId,
    start_pc: Pc,
    insts: Vec<StaticInst>,
    terminator: Terminator,
}

impl BasicBlock {
    /// The block identifier.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The PC of the first instruction.
    pub fn start_pc(&self) -> Pc {
        self.start_pc
    }

    /// The PC one past the last instruction.
    pub fn end_pc(&self) -> Pc {
        Pc::new(self.start_pc.addr() + self.insts.len() as u64 * INST_BYTES)
    }

    /// The instructions of the block (including the terminating control transfer, if
    /// any).
    pub fn insts(&self) -> &[StaticInst] {
        &self.insts
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the block contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The terminator describing the block's successors.
    pub fn terminator(&self) -> &Terminator {
        &self.terminator
    }
}

/// A static program: a list of basic blocks laid out at consecutive addresses.
///
/// Programs are produced by [`ProgramBuilder`] (directly in tests, or by the
/// synthetic benchmark generators in `flywheel-workloads`) and consumed by the fetch
/// stage of the simulators, which indexes instructions by PC.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    blocks: Vec<BasicBlock>,
    entry: BlockId,
    total_insts: usize,
}

impl Program {
    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// All basic blocks, in layout order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Looks up a block by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Total number of static instructions.
    pub fn len(&self) -> usize {
        self.total_insts
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.total_insts == 0
    }

    /// The static instruction at `pc`, if `pc` maps to one.
    pub fn inst_at(&self, pc: Pc) -> Option<&StaticInst> {
        let idx = pc.word_index() as usize;
        // Blocks are laid out contiguously starting at address 0, so the word index
        // locates the instruction directly.
        let mut base = 0usize;
        // Binary search over blocks by start pc.
        let block_idx = self
            .blocks
            .partition_point(|b| b.start_pc().word_index() as usize <= idx)
            .checked_sub(1)?;
        let block = &self.blocks[block_idx];
        base += block.start_pc().word_index() as usize;
        let offset = idx.checked_sub(base)?;
        block.insts.get(offset)
    }

    /// The PC of the first instruction of block `id`.
    pub fn block_start_pc(&self, id: BlockId) -> Pc {
        self.block(id).start_pc()
    }

    /// The block containing `pc`, if any.
    pub fn block_at(&self, pc: Pc) -> Option<&BasicBlock> {
        let idx = self
            .blocks
            .partition_point(|b| b.start_pc() <= pc)
            .checked_sub(1)?;
        let block = &self.blocks[idx];
        (pc < block.end_pc()).then_some(block)
    }

    /// Static distribution of instruction classes, as (class, count) pairs in the
    /// order of [`crate::OpClass::all`].
    pub fn op_histogram(&self) -> Vec<(crate::OpClass, usize)> {
        crate::OpClass::all()
            .iter()
            .map(|&op| {
                let count = self
                    .blocks
                    .iter()
                    .flat_map(|b| b.insts())
                    .filter(|i| i.op() == op)
                    .count();
                (op, count)
            })
            .collect()
    }
}

/// Incremental builder for [`Program`].
///
/// Blocks are appended with [`ProgramBuilder::block`]; addresses are assigned in
/// insertion order, 4 bytes per instruction, starting at address `0x1000`. The
/// builder automatically appends the control instruction implied by the terminator
/// (a conditional branch, jump, call, return or indirect jump) if the supplied
/// instruction list does not already end with a control transfer.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    blocks: Vec<(Vec<StaticInst>, Terminator)>,
}

/// Base address of the first instruction of every generated program.
const TEXT_BASE: u64 = 0x1000;

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a basic block and returns its id.
    ///
    /// If `insts` does not end in a control instruction and the terminator requires
    /// one, the matching control instruction is appended automatically (reading
    /// integer register `r1` as its condition input for conditional branches).
    pub fn block(&mut self, insts: Vec<StaticInst>, terminator: Terminator) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push((insts, terminator));
        id
    }

    /// Number of blocks added so far.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no block has been added yet.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Finalizes the program with `entry` as the entry block.
    ///
    /// # Panics
    ///
    /// Panics if `entry` or any terminator target is out of range.
    pub fn build(self, entry: BlockId) -> Program {
        let n = self.blocks.len();
        assert!((entry.0 as usize) < n, "entry block out of range");
        let mut blocks = Vec::with_capacity(n);
        let mut pc = TEXT_BASE;
        let mut total = 0usize;
        for (idx, (mut insts, terminator)) in self.blocks.into_iter().enumerate() {
            for succ in terminator.successors() {
                assert!(
                    (succ.0 as usize) < n,
                    "terminator of block {idx} references unknown block {succ}"
                );
            }
            let needs_ctrl = !matches!(terminator, Terminator::FallThrough(_));
            let already_ctrl = insts.last().map(|i| i.op().is_ctrl()).unwrap_or(false);
            if needs_ctrl && !already_ctrl {
                let ctrl = match &terminator {
                    Terminator::CondBranch { .. } => {
                        StaticInst::cond_branch(crate::ArchReg::int(1), None)
                    }
                    Terminator::Jump(_) => StaticInst::jump(),
                    Terminator::Call { .. } => StaticInst::call(),
                    Terminator::Return => StaticInst::ret(),
                    Terminator::Indirect(_) => StaticInst::indirect_jump(crate::ArchReg::int(2)),
                    Terminator::FallThrough(_) => unreachable!(),
                };
                insts.push(ctrl);
            }
            total += insts.len();
            let block = BasicBlock {
                id: BlockId(idx as u32),
                start_pc: Pc::new(pc),
                insts,
                terminator,
            };
            pc = block.end_pc().addr();
            blocks.push(block);
        }
        Program {
            blocks,
            entry,
            total_insts: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchReg, OpClass};

    fn two_block_program() -> Program {
        let mut b = ProgramBuilder::new();
        let loop_body = vec![
            StaticInst::alu(ArchReg::int(1), ArchReg::int(1), Some(ArchReg::int(2))),
            StaticInst::load(ArchReg::int(3), ArchReg::int(1)),
        ];
        let b0 = b.block(
            loop_body,
            Terminator::CondBranch {
                taken: BlockId(0),
                not_taken: BlockId(1),
            },
        );
        let _b1 = b.block(vec![StaticInst::nop()], Terminator::Return);
        b.build(b0)
    }

    #[test]
    fn builder_appends_terminator_instruction() {
        let p = two_block_program();
        let b0 = p.block(BlockId(0));
        assert_eq!(b0.len(), 3, "branch instruction should have been appended");
        assert!(b0.insts().last().unwrap().is_cond_branch());
        let b1 = p.block(BlockId(1));
        assert_eq!(
            b1.insts().last().unwrap().ctrl(),
            Some(crate::CtrlKind::Return)
        );
    }

    #[test]
    fn addresses_are_contiguous() {
        let p = two_block_program();
        let b0 = p.block(BlockId(0));
        let b1 = p.block(BlockId(1));
        assert_eq!(b0.start_pc(), Pc::new(0x1000));
        assert_eq!(b0.end_pc(), b1.start_pc());
    }

    #[test]
    fn inst_at_finds_every_instruction() {
        let p = two_block_program();
        let mut count = 0;
        for block in p.blocks() {
            let mut pc = block.start_pc();
            for inst in block.insts() {
                assert_eq!(p.inst_at(pc), Some(inst));
                pc = pc.next();
                count += 1;
            }
        }
        assert_eq!(count, p.len());
    }

    #[test]
    fn inst_at_out_of_range_is_none() {
        let p = two_block_program();
        assert_eq!(p.inst_at(Pc::new(0)), None);
        assert_eq!(p.inst_at(Pc::new(0x1000 + 100 * 4)), None);
    }

    #[test]
    fn block_at_maps_pcs_to_blocks() {
        let p = two_block_program();
        let b0 = p.block(BlockId(0));
        assert_eq!(p.block_at(b0.start_pc()).unwrap().id(), BlockId(0));
        assert_eq!(p.block_at(b0.end_pc()).unwrap().id(), BlockId(1));
    }

    #[test]
    fn histogram_counts_classes() {
        let p = two_block_program();
        let hist = p.op_histogram();
        let get = |op: OpClass| hist.iter().find(|(o, _)| *o == op).unwrap().1;
        assert_eq!(get(OpClass::IntAlu), 1);
        assert_eq!(get(OpClass::Load), 1);
        assert_eq!(get(OpClass::Ctrl), 2);
        assert_eq!(get(OpClass::Nop), 1);
    }

    #[test]
    fn successors_enumeration() {
        let t = Terminator::CondBranch {
            taken: BlockId(4),
            not_taken: BlockId(5),
        };
        assert_eq!(t.successors(), vec![BlockId(4), BlockId(5)]);
        assert!(Terminator::Return.successors().is_empty());
    }

    #[test]
    #[should_panic]
    fn dangling_successor_panics() {
        let mut b = ProgramBuilder::new();
        b.block(vec![], Terminator::Jump(BlockId(7)));
        let _ = b.build(BlockId(0));
    }
}
