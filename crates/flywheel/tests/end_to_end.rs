//! Cross-crate integration tests: workload -> baseline simulator -> Flywheel machine
//! -> energy models, exercised through the umbrella crate's public API.

use flywheel::prelude::*;

fn budget() -> SimBudget {
    SimBudget::new(5_000, 25_000)
}

#[test]
fn baseline_and_flywheel_execute_the_same_instruction_stream() {
    let program = Benchmark::Gzip.synthesize(5);
    let base = BaselineSim::new(
        BaselineConfig::paper(TechNode::N130),
        TraceGenerator::new(&program, 5),
    )
    .run(budget());
    let fly = FlywheelSim::new(
        FlywheelConfig::paper_iso_clock(TechNode::N130),
        TraceGenerator::new(&program, 5),
    )
    .run(budget());
    assert_eq!(base.instructions, fly.sim.instructions);
    // At this very small budget the Flywheel machine is still filling its Execution
    // Cache, so only require plausible (not tuned) throughput from both machines.
    assert!(base.ipc() > 0.3, "baseline IPC {}", base.ipc());
    assert!(fly.sim.ipc() > 0.15, "flywheel IPC {}", fly.sim.ipc());
    // Both report a full energy breakdown.
    assert!(base.energy.total_pj() > 0.0);
    assert!(fly.sim.energy.total_pj() > 0.0);
}

#[test]
fn recorded_replay_is_bit_identical_to_live_generation_on_both_machines() {
    // The evaluation stack records each workload once and replays it across all
    // sweep cells; both machine models must produce bit-identical results from a
    // cursor and from a live generator.
    let program = Benchmark::Gzip.synthesize(5);
    let trace = RecordedTrace::record(
        &program,
        5,
        RecordedTrace::capture_len_for(budget().total()),
    );
    let base_live = BaselineSim::new(
        BaselineConfig::paper(TechNode::N130),
        TraceGenerator::new(&program, 5),
    )
    .run(budget());
    let base_replayed =
        BaselineSim::new(BaselineConfig::paper(TechNode::N130), trace.cursor()).run(budget());
    assert_eq!(base_live, base_replayed);
    let fly_live = FlywheelSim::new(
        FlywheelConfig::paper_iso_clock(TechNode::N130),
        TraceGenerator::new(&program, 5),
    )
    .run(budget());
    let fly_replayed = FlywheelSim::new(
        FlywheelConfig::paper_iso_clock(TechNode::N130),
        trace.cursor(),
    )
    .run(budget());
    assert_eq!(fly_live, fly_replayed);
}

#[test]
fn flywheel_results_are_deterministic_across_runs() {
    // Same seed, same config => bit-identical FlywheelResult (instructions,
    // cycles, energy breakdown, EC statistics). This guards the slab-indexed
    // in-flight table and ready-list wakeup against behavioural drift: any
    // change in issue order or bookkeeping shows up as a field mismatch here.
    let program = Benchmark::Ijpeg.synthesize(11);
    for cfg in [
        FlywheelConfig::paper_iso_clock(TechNode::N130),
        FlywheelConfig::paper(TechNode::N130, 50, 50),
        FlywheelConfig::register_allocation_only(TechNode::N130),
    ] {
        let run = || FlywheelSim::new(cfg.clone(), TraceGenerator::new(&program, 11)).run(budget());
        let a = run();
        let b = run();
        assert_eq!(a.sim.instructions, b.sim.instructions);
        assert_eq!(a.sim.be_cycles, b.sim.be_cycles);
        assert_eq!(a.sim.energy, b.sim.energy);
        assert_eq!(
            a, b,
            "identical seeds and configs must give identical results"
        );
    }
}

#[test]
fn results_are_deterministic_across_runs() {
    let program = Benchmark::Parser.synthesize(9);
    let run = || {
        BaselineSim::new(
            BaselineConfig::paper(TechNode::N130),
            TraceGenerator::new(&program, 9),
        )
        .run(budget())
    };
    let a = run();
    let b = run();
    assert_eq!(
        a, b,
        "identical seeds and configs must give identical results"
    );
}

#[test]
fn clock_plans_honour_the_timing_model() {
    // The experiment configurations used throughout the repo must be achievable
    // according to the latency scaling model at the newest node.
    for (fe, be) in [(0, 50), (50, 50), (100, 50)] {
        let plan = ClockPlan::with_speedups(TechNode::N60, fe, be);
        assert!(
            plan.validate_against(TechNode::N60).is_empty(),
            "FE{fe}/BE{be} should be achievable at 60nm"
        );
    }
}

#[test]
fn flywheel_reports_execution_cache_activity_on_every_paper_benchmark() {
    for bench in Benchmark::paper_suite().iter().take(4) {
        let program = bench.synthesize(3);
        let fly = FlywheelSim::new(
            FlywheelConfig::paper_iso_clock(TechNode::N130),
            TraceGenerator::new(&program, 3),
        )
        .run(SimBudget::new(5_000, 20_000));
        assert!(
            fly.flywheel.traces_stored > 0,
            "{bench}: no traces were built"
        );
        assert!(
            fly.flywheel.ec_lookups > 0,
            "{bench}: the EC was never searched"
        );
        assert!(
            fly.flywheel.ec_residency >= 0.0 && fly.flywheel.ec_residency <= 1.0,
            "{bench}: residency out of range"
        );
    }
}

#[test]
fn energy_accounting_is_consistent_between_report_fields() {
    let program = Benchmark::Bzip2.synthesize(2);
    let result = BaselineSim::new(
        BaselineConfig::paper(TechNode::N90),
        TraceGenerator::new(&program, 2),
    )
    .run(budget());
    let e = result.energy;
    let total = e.frontend_pj
        + e.backend_pj
        + e.flywheel_pj
        + e.clock_pj
        + e.leakage_frontend_pj
        + e.leakage_backend_pj
        + e.leakage_flywheel_pj;
    assert!((total - e.total_pj()).abs() < 1e-6);
    assert!(e.leakage_fraction() > 0.0 && e.leakage_fraction() < 1.0);
    assert_eq!(
        e.leakage_flywheel_pj, 0.0,
        "a baseline run must not leak through Flywheel-only structures"
    );
    assert_eq!(e.elapsed_ps, result.elapsed_ps);
}

#[test]
fn technology_scaling_shifts_energy_towards_leakage() {
    let program = Benchmark::Mesa.synthesize(4);
    let leakage_fraction = |node: TechNode| {
        BaselineSim::new(
            BaselineConfig::paper(node),
            TraceGenerator::new(&program, 4),
        )
        .run(budget())
        .energy
        .leakage_fraction()
    };
    let at_130 = leakage_fraction(TechNode::N130);
    let at_60 = leakage_fraction(TechNode::N60);
    assert!(
        at_60 > at_130,
        "leakage share must grow towards newer nodes ({at_130:.3} -> {at_60:.3})"
    );
}
