//! Energy scaling with process technology (the Figure 15 experiment at example
//! scale): relative Flywheel energy at 130 nm, 90 nm and 60 nm for the FE+100%,
//! BE+50% configuration.
//!
//! Run with: `cargo run --release --example energy_technology_study`

use flywheel::prelude::*;

fn main() {
    let budget = SimBudget::new(20_000, 80_000);
    let benchmarks = [Benchmark::Gcc, Benchmark::Equake, Benchmark::Bzip2];

    println!("Relative energy of Flywheel (FE100%, BE50%) vs the baseline at each node");
    print!("{:<10}", "bench");
    for node in TechNode::power_study_nodes() {
        print!("  {:>7}", node.to_string());
    }
    println!();

    for bench in benchmarks {
        let program = bench.synthesize(11);
        print!("{:<10}", bench.to_string());
        for node in TechNode::power_study_nodes() {
            let base = BaselineSim::new(
                BaselineConfig::paper(*node),
                TraceGenerator::new(&program, 11),
            )
            .run(budget);
            let fly = FlywheelSim::new(
                FlywheelConfig::paper(*node, 100, 50),
                TraceGenerator::new(&program, 11),
            )
            .run(budget);
            print!("  {:>7.3}", fly.energy_ratio_over(&base));
        }
        println!();
    }
    println!();
    println!("(The savings shrink towards 60 nm as leakage grows — the Figure 15 trend.)");
}
