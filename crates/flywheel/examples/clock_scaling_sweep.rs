//! Clock-scaling sweep (the Figure 12 experiment at example scale): sweep the
//! front-end speed-up with the back-end fixed at +50% and report normalized
//! performance for a few benchmarks.
//!
//! Run with: `cargo run --release --example clock_scaling_sweep`

use flywheel::prelude::*;

fn main() {
    let node = TechNode::N130;
    let budget = SimBudget::new(20_000, 80_000);
    let benchmarks = [
        Benchmark::Ijpeg,
        Benchmark::Gzip,
        Benchmark::Mesa,
        Benchmark::Vortex,
    ];
    let frontend_speedups = [0u32, 25, 50, 75, 100];

    println!("Normalized performance (baseline = 1.0), back-end +50% in trace-execution mode");
    print!("{:<10}", "bench");
    for fe in frontend_speedups {
        print!("  FE{fe:>3}%");
    }
    println!();

    for bench in benchmarks {
        let program = bench.synthesize(7);
        let base = BaselineSim::new(
            BaselineConfig::paper(node),
            TraceGenerator::new(&program, 7),
        )
        .run(budget);
        print!("{:<10}", bench.to_string());
        for fe in frontend_speedups {
            let fly = FlywheelSim::new(
                FlywheelConfig::paper(node, fe, 50),
                TraceGenerator::new(&program, 7),
            )
            .run(budget);
            print!("  {:>6.3}", fly.speedup_over(&base));
        }
        println!();
    }
}
