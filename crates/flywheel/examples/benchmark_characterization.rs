//! Characterize the synthetic benchmark suite: instruction mix, branch behaviour,
//! working sets and baseline IPC for every workload used in the paper's figures.
//!
//! Run with: `cargo run --release --example benchmark_characterization`

use flywheel::prelude::*;

fn main() {
    let budget = SimBudget::new(10_000, 50_000);
    println!(
        "{:<9} {:>9} {:>8} {:>8} {:>9} {:>10} {:>8} {:>9}",
        "bench", "mem%", "ctrl%", "taken%", "ws(KB)", "static", "IPC", "mispred%"
    );
    for bench in Benchmark::paper_suite() {
        let program = bench.synthesize(23);
        let stats = TraceStats::collect(TraceGenerator::new(&program, 23).take(60_000));
        let result = BaselineSim::new(
            BaselineConfig::paper(TechNode::N130),
            TraceGenerator::new(&program, 23),
        )
        .run(budget);
        println!(
            "{:<9} {:>8.1}% {:>7.1}% {:>7.1}% {:>9} {:>10} {:>8.2} {:>8.2}%",
            bench.to_string(),
            stats.mem_fraction() * 100.0,
            stats.ctrl_fraction() * 100.0,
            stats.taken_rate() * 100.0,
            stats.data_working_set_bytes() / 1024,
            program.static_footprint(),
            result.ipc(),
            result.bpred.cond_mispredict_rate() * 100.0,
        );
    }
}
