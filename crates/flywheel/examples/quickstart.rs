//! Quickstart: simulate one benchmark on the baseline and the Flywheel machine and
//! compare performance and energy.
//!
//! Run with: `cargo run --release --example quickstart`

use flywheel::prelude::*;

fn main() {
    let node = TechNode::N130;
    let benchmark = Benchmark::Gzip;
    let budget = SimBudget::new(20_000, 100_000);
    let program = benchmark.synthesize(1);
    // Record the dynamic instruction stream once; both machines (and any
    // further configurations) replay identical zero-cost cursors of it.
    let trace = RecordedTrace::record(&program, 1, RecordedTrace::capture_len_for(budget.total()));

    // Fully synchronous baseline (Table 2 configuration).
    let mut baseline = BaselineSim::new(BaselineConfig::paper(node), trace.cursor());
    let base = baseline.run(budget);

    // Flywheel with the paper's FE+50% / BE+50% clock plan.
    let mut flywheel = FlywheelSim::new(FlywheelConfig::paper(node, 50, 50), trace.cursor());
    let fly = flywheel.run(budget);

    println!(
        "benchmark: {benchmark}, node: {node}, measured instructions: {}",
        base.instructions
    );
    println!();
    println!("                      baseline      flywheel(FE50,BE50)");
    println!(
        "IPC                   {:>8.3}      {:>8.3}",
        base.ipc(),
        fly.sim.ipc()
    );
    println!(
        "execution time (us)   {:>8.2}      {:>8.2}",
        base.execution_time_us(),
        fly.sim.execution_time_us()
    );
    println!(
        "energy (mJ)           {:>8.4}      {:>8.4}",
        base.total_energy_mj(),
        fly.sim.total_energy_mj()
    );
    println!(
        "avg power (W)         {:>8.2}      {:>8.2}",
        base.average_power_w(),
        fly.sim.average_power_w()
    );
    println!();
    println!(
        "flywheel speed-up over baseline : {:.3}",
        fly.speedup_over(&base)
    );
    println!(
        "flywheel energy ratio           : {:.3}",
        fly.energy_ratio_over(&base)
    );
    println!(
        "execution-cache residency       : {:.1}%",
        fly.flywheel.ec_residency * 100.0
    );
    println!(
        "traces stored / switches        : {} / {}",
        fly.flywheel.traces_stored, fly.flywheel.trace_switches
    );
}
