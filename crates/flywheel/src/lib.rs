//! # flywheel
//!
//! Umbrella crate for the reproduction of *"Increased Scalability and Power
//! Efficiency by Using Multiple Speed Pipelines"* (Talpes & Marculescu, ISCA 2005).
//!
//! It re-exports the workspace crates under one roof so that examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`isa`] — instruction set and program representation.
//! * [`workloads`] — synthetic SPEC-like benchmark models and trace generation.
//! * [`timing`] — technology scaling and structure latency models (Table 1, Fig. 1).
//! * [`power`] — Wattch-style energy and leakage models.
//! * [`uarch`] — the cycle-accurate baseline out-of-order machine.
//! * [`core`] — the Flywheel microarchitecture (Dual-Clock Issue Window, Execution
//!   Cache, pool-based renaming).
//!
//! ```
//! use flywheel::prelude::*;
//!
//! let budget = SimBudget::new(500, 2_000);
//! let program = Benchmark::Micro.synthesize(3);
//! // Capture the workload once; every simulation replays it through a cursor.
//! let trace = RecordedTrace::record(&program, 3, RecordedTrace::capture_len_for(budget.total()));
//! let mut sim = BaselineSim::new(BaselineConfig::paper_default(), trace.cursor());
//! let result = sim.run(budget);
//! assert_eq!(result.instructions, 2_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flywheel_core as core;
pub use flywheel_isa as isa;
pub use flywheel_power as power;
pub use flywheel_timing as timing;
pub use flywheel_uarch as uarch;
pub use flywheel_workloads as workloads;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use flywheel_core::{FlywheelConfig, FlywheelResult, FlywheelSim};
    pub use flywheel_power::{
        EnergyBreakdown, MachineKind, PowerConfig, PowerModel, Unit, UnitCategory,
    };
    pub use flywheel_timing::{ClockPlan, ModuleFrequencies, TechNode};
    pub use flywheel_uarch::{BaselineConfig, BaselineSim, SimBudget, SimResult};
    pub use flywheel_workloads::{
        Benchmark, RecordedTrace, TraceCursor, TraceGenerator, TraceStats,
    };
}
